//! Connect — parallel connected components (paper §4.1, Table 3 row 8).
//!
//! Following Lumetta et al., a random 2-D mesh (each lattice edge present
//! with fixed probability) is spread across the processors by row blocks.
//! Each processor first collapses its local subgraph with a sequential
//! union-find, then the processors cooperatively merge components across
//! block boundaries by chasing parent pointers through the global address
//! space (blocking reads — Connect is read-dominated in Table 4) and
//! hooking larger roots under smaller ones with remote compare-and-swap.
//!
//! The final forest is the unique min-label fixpoint, so the component
//! count and label sum are deterministic at every LogGP setting.

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_splitc::GlobalPtr;
use nowlab_splitc::SimDelta;

use crate::common::{
    block_owner, block_range, end_measured_region, execute, mix64, start_measured_region,
    DegradePolicy,
};

/// Per-node/edge cost of the local union-find phase.
const C_LOCAL: SimDelta = SimDelta::from_nanos(8_000);
/// Per-hop cost of a (local) parent-pointer chase.
const C_CHASE: SimDelta = SimDelta::from_nanos(1_000);

/// Parameters of the connected-components benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ConnectParams {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Percentage (0-100) of lattice edges present (the paper used a
    /// 30%-connected mesh).
    pub pct_connected: u32,
}

impl ConnectParams {
    /// Default benchmark size (paper: 4M-node mesh; scaled per DESIGN.md).
    pub fn benchmark() -> Self {
        ConnectParams {
            rows: 256,
            cols: 96,
            pct_connected: 30,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        ConnectParams {
            rows: 32,
            cols: 32,
            pct_connected: 30,
        }
    }

    /// Scales both dimensions by `sqrt(f)` (node count by ~`f`).
    pub fn scaled(mut self, f: f64) -> Self {
        let s = f.sqrt();
        self.rows = ((self.rows as f64 * s) as usize).max(16);
        self.cols = ((self.cols as f64 * s) as usize).max(16);
        self
    }

    /// Total nodes.
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }
}

/// Deterministic edge presence: both endpoint owners agree by hashing the
/// canonical (node, direction) pair. `dir` 0 = right, 1 = down.
fn edge_present(seed: u64, node: usize, dir: u8, pct: u32) -> bool {
    mix64(seed ^ ((node as u64) << 2) ^ dir as u64) % 100 < pct as u64
}

/// Sequential reference: (component count, sum of min-label roots).
pub fn sequential_components(params: &ConnectParams, seed: u64) -> (u64, u64) {
    let n = params.nodes();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let (rows, cols) = (params.rows, params.cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols && edge_present(seed, u, 0, params.pct_connected) {
                let (ra, rb) = (find(&mut parent, u), find(&mut parent, u + 1));
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi] = lo;
            }
            if r + 1 < rows && edge_present(seed, u, 1, params.pct_connected) {
                let (ra, rb) = (find(&mut parent, u), find(&mut parent, u + cols));
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi] = lo;
            }
        }
    }
    let mut count = 0u64;
    let mut label_sum = 0u64;
    for x in 0..n {
        let r = find(&mut parent, x);
        if r == x {
            count += 1;
        }
        label_sum = label_sum.wrapping_add(r as u64);
    }
    (count, label_sum)
}

/// The connected-components application.
#[derive(Clone, Debug)]
pub struct Connect {
    params: ConnectParams,
}

impl Connect {
    /// Creates the app with the given parameters.
    pub fn new(params: ConnectParams) -> Self {
        Connect { params }
    }
}

impl SweepableApp for Connect {
    fn name(&self) -> &str {
        "Connect"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| connect_body(ctx, params, seed),
        )
    }
}

async fn connect_body(ctx: nowlab_splitc::Ctx, params: ConnectParams, seed: u64) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let (rows, cols) = (params.rows, params.cols);
    let my_rows = block_range(rows, p, me);
    let n_local = my_rows.len() * cols;
    let row0 = my_rows.start;

    // parent[i] holds the *global node id* of local node i's parent.
    let parent = ctx.alloc_region(n_local.max(1));
    ctx.barrier().await;

    let owner_of = move |g: usize| block_owner(rows, p, g / cols);
    let local_off = move |g: usize| {
        let owner = block_owner(rows, p, g / cols);
        g - block_range(rows, p, owner).start * cols
    };

    ctx.with_mem(|m| {
        for i in 0..n_local {
            m.store(parent, i, (row0 * cols + i) as u64);
        }
    });

    start_measured_region(&ctx).await;

    // ---- Phase 1: local union-find over edges internal to my rows.
    {
        let base = row0 * cols;
        let mut uf: Vec<usize> = (base..my_rows.end * cols).collect();
        fn find(uf: &mut [usize], base: usize, mut x: usize) -> usize {
            while uf[x - base] != x {
                let up = uf[x - base];
                uf[x - base] = uf[up - base];
                x = uf[x - base];
            }
            x
        }
        let mut ops = 0u64;
        for r in my_rows.clone() {
            for c in 0..cols {
                let u = r * cols + c;
                if c + 1 < cols && edge_present(seed, u, 0, params.pct_connected) {
                    let ra = find(&mut uf, base, u);
                    let rb = find(&mut uf, base, u + 1);
                    uf[ra.max(rb) - base] = ra.min(rb);
                    ops += 1;
                }
                if r + 1 < my_rows.end && edge_present(seed, u, 1, params.pct_connected) {
                    let ra = find(&mut uf, base, u);
                    let rb = find(&mut uf, base, u + cols);
                    uf[ra.max(rb) - base] = ra.min(rb);
                    ops += 1;
                }
                ops += 1;
            }
        }
        let snapshot: Vec<usize> = (0..n_local)
            .map(|i| find(&mut uf, base, base + i))
            .collect();
        ctx.with_mem(|m| {
            for (i, r) in snapshot.into_iter().enumerate() {
                m.store(parent, i, r as u64);
            }
        });
        ctx.compute(C_LOCAL * ops).await;
    }
    ctx.barrier().await;

    // My boundary edges: down-edges from my last row into the next block.
    let mut cross: Vec<(usize, usize)> = Vec::new();
    if my_rows.end < rows && !my_rows.is_empty() {
        let r = my_rows.end - 1;
        for c in 0..cols {
            let u = r * cols + c;
            if edge_present(seed, u, 1, params.pct_connected) {
                cross.push((u, u + cols));
            }
        }
    }

    // ---- Phase 2: iterative cross-boundary hooking until a global
    // fixpoint (min-label roots).
    loop {
        let mut changes = 0u64;
        for &(u, v) in &cross {
            let mut roots = [0usize; 2];
            for (slot, start) in [(0usize, u), (1, v)] {
                let mut x = start;
                loop {
                    let o = owner_of(x);
                    let px = if o == me {
                        ctx.compute(C_CHASE).await;
                        ctx.load_local(parent, local_off(x))
                    } else {
                        ctx.read(GlobalPtr::new(o, parent, local_off(x))).await
                    } as usize;
                    if px == x {
                        break;
                    }
                    x = px;
                }
                roots[slot] = x;
            }
            let (lo, hi) = (roots[0].min(roots[1]), roots[0].max(roots[1]));
            if lo == hi {
                continue;
            }
            // Hook hi under lo if hi is still a root; if the CAS loses a
            // race the next sweep converges anyway.
            let owner = owner_of(hi);
            if owner == me {
                ctx.with_mem(|m| m.compare_swap(parent, local_off(hi), hi as u64, lo as u64));
            } else {
                ctx.compare_swap(
                    GlobalPtr::new(owner, parent, local_off(hi)),
                    hi as u64,
                    lo as u64,
                )
                .await;
            }
            changes += 1;
        }
        if ctx.allreduce_sum(changes).await == 0 {
            break;
        }
    }
    ctx.barrier().await;

    // Full compression: point every local node at its global root.
    let mut final_labels = Vec::with_capacity(n_local);
    for i in 0..n_local {
        let mut x = row0 * cols + i;
        loop {
            let o = owner_of(x);
            let px = if o == me {
                ctx.compute(C_CHASE).await;
                ctx.load_local(parent, local_off(x))
            } else {
                ctx.read(GlobalPtr::new(o, parent, local_off(x))).await
            } as usize;
            if px == x {
                break;
            }
            x = px;
        }
        final_labels.push(x);
    }

    end_measured_region(&ctx).await;

    // ---- Verification data: roots found locally and the label sum.
    let local_roots = final_labels
        .iter()
        .enumerate()
        .filter(|&(i, &l)| l == row0 * cols + i)
        .count() as u64;
    let label_sum = final_labels
        .iter()
        .fold(0u64, |a, &l| a.wrapping_add(l as u64));
    label_sum.wrapping_add(local_roots << 40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_reference() {
        let params = ConnectParams::small();
        let seed = 5;
        let (count, label_sum) = sequential_components(&params, seed);
        let out = Connect::new(params).run(&RunSpec::new(4).with_seed(seed));
        assert!(out.completed);
        assert_eq!(out.check, label_sum.wrapping_add(count << 40));
    }

    #[test]
    fn matches_sequential_on_odd_proc_count() {
        let params = ConnectParams::small();
        let (count, label_sum) = sequential_components(&params, 1);
        let out = Connect::new(params).run(&RunSpec::new(5));
        assert_eq!(out.check, label_sum.wrapping_add(count << 40));
    }

    #[test]
    fn is_read_dominated() {
        let out = Connect::new(ConnectParams::small()).run(&RunSpec::new(8));
        assert!(
            out.stats.pct_reads() > 50.0,
            "connect reads: {}",
            out.stats.pct_reads()
        );
    }

    #[test]
    fn check_is_invariant_across_knobs() {
        use nowlab_core::{Axis, NetConfig};
        let app = Connect::new(ConnectParams::small());
        let base = app.run(&RunSpec::new(4));
        let knobs = Axis::Latency
            .knobs_for(&NetConfig::berkeley_now().machine, 80.0)
            .unwrap();
        let slowed =
            app.run(&RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs)));
        assert_eq!(base.check, slowed.check);
    }
}
