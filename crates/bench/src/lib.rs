//! Shared machinery for the experiment regenerators.
//!
//! Each bench target in `benches/` reproduces one exhibit of the paper
//! (see DESIGN.md §5 for the index). This library holds the drivers they
//! share: suite-wide sweeps, the paper's reference numbers for
//! side-by-side printing, and environment-variable scaling.

#![forbid(unsafe_code)]

use nowlab_apps::{suite_scaled, SuiteScale};
use nowlab_core::report::{fmt_f, sparkline, Table};
use nowlab_core::{default_jobs, sweep_many, Axis, AxisSweep, RunSpec, SweepableApp};

/// Event budget per run: generously above any completing run at benchmark
/// scale, so only genuine livelock (Barnes at high overhead) trips it.
pub const EVENT_LIMIT: u64 = 150_000_000;

/// Suite scale selected by the `NOWLAB_SCALE` environment variable
/// (`test` for quick runs, anything else = benchmark scale).
pub fn env_scale() -> SuiteScale {
    match std::env::var("NOWLAB_SCALE").as_deref() {
        Ok("test") => SuiteScale::Test,
        _ => SuiteScale::Benchmark,
    }
}

/// The whole suite at the environment-selected scale.
pub fn suite() -> Vec<Box<dyn SweepableApp>> {
    suite_scaled(env_scale())
}

/// A standard run spec for experiments.
pub fn spec(procs: usize) -> RunSpec {
    RunSpec::new(procs).with_event_limit(EVENT_LIMIT)
}

/// Worker-thread count selected by the `NOWLAB_JOBS` environment variable
/// (default: the host's available parallelism). `NOWLAB_JOBS=1` forces the
/// sequential path; results are byte-identical either way.
pub fn env_jobs() -> usize {
    std::env::var("NOWLAB_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(default_jobs)
}

/// Sweeps every suite application along one axis and returns the results,
/// fanning independent `(app, value)` runs across [`env_jobs`] workers.
pub fn sweep_suite(procs: usize, axis: Axis, values: &[f64]) -> Vec<AxisSweep> {
    sweep_suite_jobs(procs, axis, values, env_jobs())
}

/// [`sweep_suite`] with an explicit worker count.
///
/// The exhibits this library drives all expect complete baselines (the
/// event budget is far above any completing benchmark-scale run), so an
/// incomplete baseline here is an apparatus bug: panic with the structured
/// message rather than silently dropping the row.
pub fn sweep_suite_jobs(procs: usize, axis: Axis, values: &[f64], jobs: usize) -> Vec<AxisSweep> {
    sweep_many(&suite(), &spec(procs), axis, values, jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("suite sweep failed: {e}")))
        .collect()
}

/// Saves a table as CSV under `NOWLAB_CSV_DIR` (no-op when the variable is
/// unset). File name: `<slug>.csv`.
pub fn save_csv(slug: &str, table: &Table) {
    let Ok(dir) = std::env::var("NOWLAB_CSV_DIR") else {
        return;
    };
    let dir = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("NOWLAB_CSV_DIR: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{slug}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("NOWLAB_CSV_DIR: cannot write {}: {e}", path.display());
    } else {
        println!("(csv saved to {})", path.display());
    }
}

/// Prints a figure-style slowdown table: one row per app, one column per
/// swept value; incomplete points (livelock) print as N/A. Also saves CSV
/// when `NOWLAB_CSV_DIR` is set.
pub fn print_slowdown_table(title: &str, sweeps: &[AxisSweep], values: &[f64]) {
    let headers: Vec<String> = std::iter::once("app".to_string())
        .chain(values.iter().map(|v| format!("{v}")))
        .chain(std::iter::once("shape".to_string()))
        .collect();
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for s in sweeps {
        let mut row = vec![s.app.clone()];
        for p in &s.points {
            row.push(if p.completed {
                fmt_f(p.slowdown, 2)
            } else {
                "N/A".to_string()
            });
        }
        // Sweeps may skip values below the machine baseline.
        while row.len() + 1 < headers.len() {
            row.push("-".to_string());
        }
        let series: Vec<f64> = s
            .points
            .iter()
            .map(|p| if p.completed { p.slowdown } else { f64::NAN })
            .collect();
        row.push(sparkline(&series));
        t.push_row(row);
    }
    println!("{t}");
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    save_csv(slug.trim_matches('_'), &t);
}

/// Paper reference values for side-by-side comparison in EXPERIMENTS.md.
pub mod paper {
    /// Table 4, "Msg. Interval (µs)" column, in suite order.
    pub const MSG_INTERVAL_US: [(&str, f64); 10] = [
        ("Radix", 6.1),
        ("EM3D(write)", 8.0),
        ("EM3D(read)", 13.8),
        ("Sample", 13.0),
        ("Barnes", 52.8),
        ("P-Ray", 156.2),
        ("Murphi", 212.6),
        ("Connect", 183.5),
        ("NOW-sort", 817.4),
        ("Radb", 852.7),
    ];

    /// Approximate 32-node slowdowns at o ≈ 103 µs read off Figure 5b /
    /// Table 5 (N/A entries omitted).
    pub const SLOWDOWN_AT_O100: [(&str, f64); 9] = [
        ("Radix", 57.0),
        ("EM3D(write)", 27.0),
        ("EM3D(read)", 22.4),
        ("Sample", 20.6),
        ("P-Ray", 6.4),
        ("Murphi", 3.1),
        ("Connect", 2.2),
        ("NOW-sort", 1.25),
        ("Radb", 1.66),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parses() {
        // Default is benchmark scale.
        assert_eq!(env_scale(), SuiteScale::Benchmark);
    }

    #[test]
    fn suite_sweep_smoke() {
        std::env::set_var("NOWLAB_SCALE", "test");
        let apps = suite_scaled(SuiteScale::Test);
        let s = nowlab_core::sweep(apps[0].as_ref(), &spec(4), Axis::Overhead, &[2.9, 13.0])
            .expect("test-scale baseline completes");
        assert_eq!(s.points.len(), 2);
        assert!(s.total_events() > 0, "events must flow through the sweep");
        std::env::remove_var("NOWLAB_SCALE");
    }

    #[test]
    fn env_jobs_parses_and_defaults() {
        std::env::remove_var("NOWLAB_JOBS");
        assert!(env_jobs() >= 1);
        std::env::set_var("NOWLAB_JOBS", "3");
        assert_eq!(env_jobs(), 3);
        std::env::set_var("NOWLAB_JOBS", "0");
        assert!(env_jobs() >= 1, "zero falls back to the default");
        std::env::remove_var("NOWLAB_JOBS");
    }
}
