//! Ablation — the latency knob's mechanism (paper §3.2).
//!
//! "The latency, L, requires care to vary without affecting the other
//! LogGP characteristics. […] modifying the send or receive path would
//! have the side effect of increasing g. Our approach involves adding a
//! delay queue inside the LANai."
//!
//! This ablation calibrates both mechanisms and runs a write-based
//! application under each: the delay queue keeps `g` at its baseline (up
//! to the separate constant-window artifact), while the naive
//! slow-receive-path mechanism inflates `g` by the full `ΔL` — turning a
//! latency-tolerant program latency-sensitive and corrupting the whole
//! experiment, exactly the contamination the paper engineered around.

use nowlab_am::LatencyMode;
use nowlab_apps::em3d::{Em3dParams, Em3dWrite};
use nowlab_core::calib::calibrate;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Knobs, NetConfig, RunSpec, SimDelta, SweepableApp};

fn main() {
    let app = Em3dWrite::new(Em3dParams::benchmark());
    let base_run = app.run(&RunSpec::new(32));
    assert!(base_run.completed);
    let base_s = base_run.runtime.as_secs_f64();

    let mut t = Table::new(
        "Ablation: latency mechanism — delay queue (paper) vs slow rx path (naive)",
        &[
            "desired L",
            "g (delay queue)",
            "g (slow rx)",
            "EM3D(w) slowdown (dq)",
            "EM3D(w) slowdown (srx)",
        ],
    );
    for l in [5.0, 15.0, 30.0, 55.0, 105.0] {
        let knobs = Knobs::with_latency(SimDelta::from_micros(l - 5.0));
        let dq = NetConfig::berkeley_now()
            .with_knobs(knobs)
            .with_latency_mode(LatencyMode::DelayQueue);
        let srx = NetConfig::berkeley_now()
            .with_knobs(knobs)
            .with_latency_mode(LatencyMode::SlowRxPath);
        let c_dq = calibrate(dq);
        let c_srx = calibrate(srx);
        let r_dq = app.run(&RunSpec::new(32).with_net(dq));
        let r_srx = app.run(&RunSpec::new(32).with_net(srx));
        assert!(r_dq.completed && r_srx.completed);
        t.push_row([
            fmt_f(l, 1),
            fmt_f(c_dq.gap_us, 1),
            fmt_f(c_srx.gap_us, 1),
            fmt_f(r_dq.runtime.as_secs_f64() / base_s, 2),
            fmt_f(r_srx.runtime.as_secs_f64() / base_s, 2),
        ]);
    }
    println!("{t}");
    println!(
        "expected: under the delay queue, g stays near 5.8us until the\n\
         constant-window effect kicks in (~2L/8); under the slow receive\n\
         path, g ≈ 5.8 + ΔL immediately — and the write-based application\n\
         pays for it, which would have corrupted Figure 7."
    );
}
