//! Table 3 — the application suite and its baseline runtimes on 16 and 32
//! nodes (virtual seconds on the scaled inputs; the paper's absolute
//! seconds used ~100-1000x larger inputs, see DESIGN.md §6).

use nowlab_bench::{spec, suite};
use nowlab_core::report::{fmt_time, Table};

fn main() {
    let mut t = Table::new(
        "Table 3: Applications and baseline run times (scaled inputs)",
        &[
            "program",
            "16-node time",
            "32-node time",
            "speedup 16->32",
            "check",
        ],
    );
    for app in suite() {
        let o16 = app.run(&spec(16));
        let o32 = app.run(&spec(32));
        assert!(
            o16.completed && o32.completed,
            "{} baseline failed",
            app.name()
        );
        t.push_row([
            app.name().to_string(),
            fmt_time(o16.runtime),
            fmt_time(o32.runtime),
            format!(
                "{:.2}x",
                o16.runtime.as_secs_f64() / o32.runtime.as_secs_f64()
            ),
            format!("{:016x}", o32.check),
        ]);
    }
    println!("{t}");
    println!("paper: most applications are well parallelized from 16 to 32 nodes.");
}
