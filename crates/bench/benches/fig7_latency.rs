//! Figure 7 — sensitivity to latency on 32 nodes: slowdown vs latency in
//! µs.
//!
//! Reproduction targets: a *qualitatively different* ordering from the
//! overhead and gap sweeps — the read-based applications (EM3D(read),
//! Barnes, P-Ray, Connect) lead; write-based applications largely ignore
//! latency; worst-case slowdowns are modest (the paper sees ≤ ~9x for
//! EM3D(read), ≤ ~4x for the rest); a small tail uptick appears where the
//! constant-capacity window inflates the effective gap.

use nowlab_bench::{print_slowdown_table, sweep_suite};
use nowlab_core::Axis;

fn main() {
    let values = Axis::Latency.paper_values();
    let sweeps = sweep_suite(32, Axis::Latency, &values);
    print_slowdown_table(
        "Figure 7: slowdown vs latency (us), 32 nodes",
        &sweeps,
        &values,
    );
    println!(
        "paper: applications are surprisingly tolerant of latency; only the\n\
         blocking-read apps pay, and EM3D(read) is the worst case."
    );
}
