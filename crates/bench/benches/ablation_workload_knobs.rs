//! Ablation — application-level knobs that set communication frequency.
//!
//! The paper's first-order law is that overhead sensitivity is predicted
//! by message frequency (§5.1). Here we turn the two workload dials that
//! control frequency directly and watch sensitivity follow:
//!
//! * EM3D's remote-edge fraction (the paper ran 40%): more remote edges →
//!   more messages per step → steeper overhead response;
//! * P-Ray's software-cache capacity (the paper: "the frequency of such
//!   operations is a function of the scene complexity and the software
//!   caching algorithm"): a smaller cache → more misses → more reads.

use nowlab_apps::em3d::{Em3dParams, Em3dWrite};
use nowlab_apps::pray::{Pray, PrayParams};
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, NetConfig, RunSpec, SweepableApp};

fn slowdown_at(app: &dyn SweepableApp, o_us: f64) -> (f64, f64, f64) {
    let base = app.run(&RunSpec::new(32));
    assert!(base.completed, "{} baseline", app.name());
    let knobs = Axis::Overhead
        .knobs_for(&NetConfig::berkeley_now().machine, o_us)
        .unwrap();
    let slow = app.run(&RunSpec::new(32).with_net(NetConfig::berkeley_now().with_knobs(knobs)));
    assert!(slow.completed);
    (
        base.stats.msg_interval_us(),
        base.stats.avg_msgs_per_proc(),
        slow.runtime.as_secs_f64() / base.runtime.as_secs_f64(),
    )
}

fn main() {
    let mut t = Table::new(
        "Ablation: EM3D(write) remote-edge fraction vs overhead sensitivity (o=53us)",
        &["% remote", "interval us", "msg/proc", "slowdown @o=53"],
    );
    for pct in [0u32, 10, 20, 40, 60, 80] {
        let mut p = Em3dParams::benchmark();
        p.pct_remote = pct;
        let app = Em3dWrite::new(p);
        let (interval, msgs, slowdown) = slowdown_at(&app, 53.0);
        t.push_row([
            pct.to_string(),
            fmt_f(interval, 1),
            fmt_f(msgs, 0),
            fmt_f(slowdown, 2),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(
        "Ablation: P-Ray cache capacity vs read traffic and overhead sensitivity (o=53us)",
        &["cache", "interval us", "msg/proc", "slowdown @o=53"],
    );
    for cap in [8usize, 24, 48, 96, 192, 512] {
        let mut p = PrayParams::benchmark();
        p.cache_capacity = cap;
        let app = Pray::new(p);
        let (interval, msgs, slowdown) = slowdown_at(&app, 53.0);
        t.push_row([
            cap.to_string(),
            fmt_f(interval, 1),
            fmt_f(msgs, 0),
            fmt_f(slowdown, 2),
        ]);
    }
    println!("{t}");
    println!(
        "expected: P-Ray's sensitivity tracks its miss traffic\n\
         monotonically (~9x at an 8-entry cache down to ~1.5x once the\n\
         scene fits). EM3D jumps from its barrier-only floor at 0% remote\n\
         to the message-bound plateau by 10% — the paper's\n\
         frequency-predicts-sensitivity law inside single applications."
    );
}
