//! Table 6 — predicted vs measured runtimes under added gap, using the
//! §5.2 **burst model** `r_pred = r_base + m·Δg` (every message of the
//! busiest processor eats the full added gap, because communication
//! happens in bursts faster than 1/g).

use nowlab_bench::{spec, suite};
use nowlab_core::models::predict_gap_burst;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, SimDelta};

fn main() {
    let values = Axis::Gap.paper_values();
    let base_g = values[0];
    for app in suite() {
        let template = spec(32);
        let baseline = app.run(&template);
        assert!(baseline.completed, "{} baseline failed", app.name());
        let m = baseline.stats.max_msgs_per_proc();
        let mut t = Table::new(
            format!(
                "Table 6: {} (m = {} msgs, baseline {:.3}s, burst model)",
                app.name(),
                m,
                baseline.runtime.as_secs_f64()
            ),
            &["g (us)", "measured s", "predicted s", "pred/meas"],
        );
        for &g in &values {
            let knobs = Axis::Gap.knobs_for(&template.net.machine, g).unwrap();
            let out = app.run(&template.with_net(template.net.with_knobs(knobs)));
            let pred = predict_gap_burst(baseline.runtime, m, SimDelta::from_micros(g - base_g));
            if out.completed {
                t.push_row([
                    fmt_f(g, 1),
                    fmt_f(out.runtime.as_secs_f64(), 4),
                    fmt_f(pred.as_secs_f64(), 4),
                    fmt_f(pred.as_secs_f64() / out.runtime.as_secs_f64(), 2),
                ]);
            } else {
                t.push_row([
                    fmt_f(g, 1),
                    "N/A".into(),
                    fmt_f(pred.as_secs_f64(), 4),
                    "-".into(),
                ]);
            }
        }
        println!("{t}");
    }
    println!(
        "paper: the burst model over-predicts slightly (not every message is\n\
         sent in a burst) and fits the heavy communicators best."
    );
}
