//! Table 4 — communication summary of the suite on 32 processors:
//! per-processor message counts, frequency, interval, barrier interval,
//! bulk and read percentages, and bandwidths through the communication
//! layer.

use nowlab_bench::{paper, spec, suite};
use nowlab_core::report::{fmt_f, fmt_or_na, Table};

fn main() {
    let mut t = Table::new(
        "Table 4: Communication summary, 32 processors (scaled inputs)",
        &[
            "program",
            "avg msg/proc",
            "max msg/proc",
            "msg/proc/ms",
            "interval us",
            "paper interval",
            "barrier ms",
            "% bulk",
            "% reads",
            "bulk KB/s",
            "small KB/s",
        ],
    );
    for app in suite() {
        let out = app.run(&spec(32));
        assert!(out.completed, "{} failed", app.name());
        let s = &out.stats;
        let paper_interval = paper::MSG_INTERVAL_US
            .iter()
            .find(|(n, _)| *n == app.name())
            .map(|&(_, v)| v);
        let barrier = s.barrier_interval_ms();
        t.push_row([
            app.name().to_string(),
            fmt_f(s.avg_msgs_per_proc(), 0),
            format!("{}", s.max_msgs_per_proc()),
            fmt_f(s.msgs_per_proc_per_ms(), 2),
            fmt_f(s.msg_interval_us(), 1),
            fmt_or_na(paper_interval, 1),
            if barrier.is_finite() {
                fmt_f(barrier, 1)
            } else {
                "-".into()
            },
            fmt_f(s.pct_bulk(), 2),
            fmt_f(s.pct_reads(), 2),
            fmt_f(s.bulk_kb_per_s(), 1),
            fmt_f(s.small_kb_per_s(), 1),
        ]);
    }
    println!("{t}");
    println!(
        "reproduction targets: two-orders-of-magnitude frequency spread;\n\
         Radix/EM3D(w)/EM3D(r)/Sample the frequent four; EM3D(read), P-Ray,\n\
         Connect read-dominated; Barnes/P-Ray/Murphi/NOW-sort/Radb bulk users."
    );
}
