//! Figure 5 — sensitivity to overhead on 16 (panel a) and 32 (panel b)
//! nodes: application slowdown vs overhead in µs, fixed input size.
//!
//! Reproduction targets: the frequent communicators (Radix, EM3D both
//! variants, Sample) are the most sensitive; every app slows roughly
//! linearly; Barnes livelocks (N/A) beyond small added overhead; Radix is
//! markedly *more* sensitive on 32 nodes than 16 (the serialization
//! effect, §5.1).

use nowlab_bench::{print_slowdown_table, sweep_suite};
use nowlab_core::Axis;

fn main() {
    let values = Axis::Overhead.paper_values();
    for procs in [16usize, 32] {
        let sweeps = sweep_suite(procs, Axis::Overhead, &values);
        print_slowdown_table(
            &format!(
                "Figure 5{}: slowdown vs overhead (us), {procs} nodes",
                if procs == 16 { 'a' } else { 'b' }
            ),
            &sweeps,
            &values,
        );
    }
    println!(
        "paper: at o=103us the 32-node suite slows 2x-57x; Barnes does not\n\
         complete beyond o=7us on 32 nodes (livelock)."
    );
}
