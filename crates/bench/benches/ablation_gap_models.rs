//! Ablation — burst vs uniform gap model (§5.2's two extremes).
//!
//! The uniform model assumes messages are evenly spaced at the
//! application's average interval `I`, so added gap below `I` is free; the
//! burst model assumes every message is sent back-to-back, so every
//! message eats the full added gap. The paper concludes the burst model
//! fits its applications — communication is bursty. This ablation
//! computes both predictions and their relative errors for every app.

use nowlab_bench::{spec, suite};
use nowlab_core::models::{predict_gap_burst, predict_gap_uniform, rel_error};
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, SimDelta};

fn main() {
    let values = [30.0f64, 55.0, 80.0, 105.0];
    let base_g = 5.8;
    let mut t = Table::new(
        "Ablation: burst vs uniform gap model, mean |relative error| over g in {30,55,80,105}us",
        &["app", "burst model err", "uniform model err", "better"],
    );
    for app in suite() {
        let template = spec(32);
        let baseline = app.run(&template);
        assert!(baseline.completed);
        let m = baseline.stats.max_msgs_per_proc();
        let interval = SimDelta::from_micros(baseline.stats.msg_interval_us());
        let (mut burst_err, mut uniform_err, mut n) = (0.0, 0.0, 0);
        for &g in &values {
            let knobs = Axis::Gap.knobs_for(&template.net.machine, g).unwrap();
            let out = app.run(&template.with_net(template.net.with_knobs(knobs)));
            if !out.completed {
                continue;
            }
            let d_g = SimDelta::from_micros(g - base_g);
            let total_g = SimDelta::from_micros(g);
            burst_err += rel_error(predict_gap_burst(baseline.runtime, m, d_g), out.runtime);
            uniform_err += rel_error(
                predict_gap_uniform(baseline.runtime, m, total_g, interval),
                out.runtime,
            );
            n += 1;
        }
        if n == 0 {
            continue;
        }
        let (b, u) = (burst_err / n as f64, uniform_err / n as f64);
        t.push_row([
            app.name().to_string(),
            fmt_f(b, 3),
            fmt_f(u, 3),
            if b <= u { "burst" } else { "uniform" }.to_string(),
        ]);
    }
    println!("{t}");
    println!("paper: the burst model tracks the applications; communication is bursty.");
}
