//! Extension — slowdown under message loss (not in the paper).
//!
//! The paper's apparatus assumes a perfectly reliable interconnect. This
//! experiment dials a deterministic drop rate from 0 to 10% and measures
//! how the reliable-delivery protocol's retransmissions inflate the suite
//! runtimes, echoing the sensitivity methodology of §5 with loss as the
//! swept parameter. A second exhibit reruns the §3.3 calibration
//! microbenchmarks under loss: drops consume flow-control credits until a
//! retransmit matures, so the *effective* g and L shift upward even though
//! the configured LogGP parameters are untouched.
//!
//! Pass `--test` for a reduced smoke grid (used by CI).

use nowlab_bench::{save_csv, spec, suite, EVENT_LIMIT};
use nowlab_core::calib::{calibrate, round_trip_us};
use nowlab_core::report::{fmt_f, fmt_or_na, sparkline, Table};
use nowlab_core::{FaultPlan, NetConfig, RunSpec, SimDelta};

/// The deterministic fault stream used throughout (arbitrary, fixed).
const FAULT_SEED: u64 = 0x10_55;

/// Builds a guarded run spec for `rate`: rate 0 is the pristine baseline
/// (no protocol engaged), anything else gets the fault plan plus a
/// virtual-time deadline so heavy loss degrades to N/A instead of
/// retrying forever.
fn spec_at(procs: usize, rate: f64) -> RunSpec {
    let mut s = spec(procs);
    if rate > 0.0 {
        s = s
            .with_net(
                NetConfig::berkeley_now().with_faults(FaultPlan::with_drop_rate(rate, FAULT_SEED)),
            )
            .with_time_limit(SimDelta::from_secs(120.0));
    }
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if smoke {
        std::env::set_var("NOWLAB_SCALE", "test");
    }
    let (procs, rates): (usize, &[f64]) = if smoke {
        (8, &[0.0, 0.01, 0.05])
    } else {
        (32, &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10])
    };

    // Exhibit 1: suite slowdown vs drop rate.
    let headers: Vec<String> = std::iter::once("app".to_string())
        .chain(rates.iter().map(|r| format!("{:.1}%", r * 100.0)))
        .chain(std::iter::once("shape".to_string()))
        .collect();
    let mut slow = Table::new(
        format!("ext: slowdown vs drop rate ({procs} procs, seed {FAULT_SEED:#x})"),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    // Per-rate protocol totals, accumulated across the suite.
    let mut totals = vec![[0u64; 4]; rates.len()]; // drops, retx, timeouts, n/a
    for app in suite() {
        let mut row = vec![app.name().to_string()];
        let mut series = Vec::with_capacity(rates.len());
        let mut base: Option<(f64, u64)> = None; // runtime secs, check
        for (i, &rate) in rates.iter().enumerate() {
            let out = app.run(&spec_at(procs, rate));
            totals[i][0] += out.stats.total_drops();
            totals[i][1] += out.stats.total_retransmits();
            totals[i][2] += out.stats.total_timeouts();
            totals[i][3] += u64::from(!out.completed);
            if rate == 0.0 {
                assert!(out.completed, "{}: lossless baseline failed", app.name());
                base = Some((out.runtime.as_secs_f64(), out.check));
            }
            let (base_rt, base_check) = base.expect("rate grid must start at 0");
            let slowdown = out.completed.then(|| out.runtime.as_secs_f64() / base_rt);
            if out.completed {
                // Loss must never corrupt results: retransmission keeps
                // the application's answer bit-identical.
                assert_eq!(
                    out.check,
                    base_check,
                    "{}: checksum changed at drop rate {rate}",
                    app.name()
                );
            }
            series.push(slowdown.unwrap_or(f64::NAN));
            row.push(fmt_or_na(slowdown, 2));
        }
        row.push(sparkline(&series));
        slow.push_row(row);
    }
    println!("{slow}");
    save_csv("ext_fault_sweep_slowdown", &slow);

    let mut proto = Table::new(
        "ext: protocol work per drop rate (suite totals)",
        &["drop rate", "drops", "retransmits", "timeouts", "N/A runs"],
    );
    for (i, &rate) in rates.iter().enumerate() {
        proto.push_row([
            format!("{:.1}%", rate * 100.0),
            totals[i][0].to_string(),
            totals[i][1].to_string(),
            totals[i][2].to_string(),
            totals[i][3].to_string(),
        ]);
    }
    println!("{proto}");
    save_csv("ext_fault_sweep_protocol", &proto);

    // Exhibit 2: the §3.3 microbenchmarks under loss. The knobs are all at
    // the baseline — every shift below is protocol-induced.
    let mut cal = Table::new(
        "ext: effective LogGP parameters under loss (calibration microbenchmarks)",
        &[
            "drop rate",
            "o_send",
            "o_recv",
            "g (us)",
            "L (us)",
            "RTT (us)",
        ],
    );
    for &rate in rates {
        let net = spec_at(2, rate).net;
        let c = calibrate(net);
        cal.push_row([
            format!("{:.1}%", rate * 100.0),
            fmt_f(c.o_send_us, 2),
            fmt_f(c.o_recv_us, 2),
            fmt_f(c.gap_us, 2),
            fmt_f(c.latency_us, 2),
            fmt_f(round_trip_us(net), 1),
        ]);
    }
    println!("{cal}");
    save_csv("ext_fault_sweep_calibration", &cal);

    println!(
        "drops are rerolled per retransmission, so every run above either \
         completes with the lossless checksum or reports N/A at the \
         {EVENT_LIMIT}-event / 120 s budget."
    );
}
