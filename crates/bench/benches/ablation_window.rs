//! Ablation — the flow-control window (DESIGN.md §5's "constant window vs
//! ⌈L/g⌉ capacity" question).
//!
//! The paper observes (§3.3) that its implementation has a *fixed* number
//! of outstanding messages, so at large `L` the network pipeline cannot
//! fill and the effective gap rises — a deviation from the pure LogGP
//! capacity model. This ablation varies the window depth and measures the
//! effective gap at high latency, plus its effect on a latency-tolerant
//! (write-based) application: a deeper window restores the pipeline.

use nowlab_apps::em3d::{Em3dParams, Em3dWrite};
use nowlab_core::calib::calibrate;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Knobs, NetConfig, RunSpec, SimDelta, SweepableApp};

fn main() {
    let d_lat = SimDelta::from_micros(100.0);
    let mut t = Table::new(
        "Ablation: flow-control window depth at L = 105us",
        &["window", "effective g (us)", "EM3D(write) slowdown"],
    );
    let app = Em3dWrite::new(Em3dParams::benchmark());
    for window in [2u32, 4, 8, 16, 32] {
        let cfg = NetConfig::berkeley_now()
            .with_window(window)
            .with_knobs(Knobs::with_latency(d_lat));
        let cal = calibrate(cfg);
        let base_cfg = NetConfig::berkeley_now().with_window(window);
        let base = app.run(&RunSpec::new(32).with_net(base_cfg));
        let slow = app.run(&RunSpec::new(32).with_net(cfg));
        assert!(base.completed && slow.completed);
        t.push_row([
            window.to_string(),
            fmt_f(cal.gap_us, 1),
            fmt_f(slow.runtime.as_secs_f64() / base.runtime.as_secs_f64(), 2),
        ]);
    }
    println!("{t}");
    println!(
        "expected: effective g ~ 2L/window (the paper's W=8 gives 27.7us at\n\
         L=105); deep windows make even pipelined-write apps latency-proof."
    );
}
