//! Table 5 — predicted vs measured runtimes under added overhead, using
//! the §5.1 model `r_pred = r_orig + 2·m·Δo` with `m` the maximum number
//! of messages sent by any processor in the baseline run.
//!
//! Reproduction targets: accurate for the frequent, well-balanced
//! communicators (Sample, EM3D(write)); *under*-predicts Radix (the
//! serialization effect) and the task-queue/locking apps.

use nowlab_bench::{spec, suite};
use nowlab_core::models::predict_overhead;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, SimDelta};

fn main() {
    let values = Axis::Overhead.paper_values();
    let base_o = values[0];
    for app in suite() {
        let template = spec(32);
        let baseline = app.run(&template);
        assert!(baseline.completed, "{} baseline failed", app.name());
        let m = baseline.stats.max_msgs_per_proc();
        let mut t = Table::new(
            format!(
                "Table 5: {} (m = {} msgs, baseline {:.3}s)",
                app.name(),
                m,
                baseline.runtime.as_secs_f64()
            ),
            &["o (us)", "measured s", "predicted s", "pred/meas"],
        );
        for &o in &values {
            let knobs = Axis::Overhead.knobs_for(&template.net.machine, o).unwrap();
            let out = app.run(&template.with_net(template.net.with_knobs(knobs)));
            let d_o = SimDelta::from_micros(o - base_o);
            let pred = predict_overhead(baseline.runtime, m, d_o);
            if out.completed {
                t.push_row([
                    fmt_f(o, 1),
                    fmt_f(out.runtime.as_secs_f64(), 4),
                    fmt_f(pred.as_secs_f64(), 4),
                    fmt_f(pred.as_secs_f64() / out.runtime.as_secs_f64(), 2),
                ]);
            } else {
                t.push_row([
                    fmt_f(o, 1),
                    "N/A".into(),
                    fmt_f(pred.as_secs_f64(), 4),
                    "-".into(),
                ]);
            }
        }
        println!("{t}");
    }
    println!(
        "paper: model within a few percent for Sample and EM3D(write);\n\
         underpredicts Radix/P-Ray/Murphi (serial phases are not 2mo)."
    );
}
