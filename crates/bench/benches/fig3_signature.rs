//! Figure 3 — the LogP signature: average initiation interval (µs/message)
//! as a function of burst size, one curve per fixed computational delay Δ.
//!
//! The paper's example signature is taken with the gap knob set so the
//! desired `g` is 14 µs; we print the same configuration plus the
//! baseline. The send overhead is the short-burst plateau, the gap the
//! long-burst plateau at Δ=0, and `o_send + o_recv + Δ` the plateau for
//! large Δ.

use nowlab_core::calib::signature;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Knobs, NetConfig, SimDelta};

fn print_signature(title: &str, cfg: NetConfig) {
    let bursts = [1usize, 2, 4, 8, 16, 32, 64];
    let deltas = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let sig = signature(cfg, &bursts, &deltas);
    let headers: Vec<String> = std::iter::once("delta\\burst".to_string())
        .chain(bursts.iter().map(|b| b.to_string()))
        .collect();
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &d in &deltas {
        let mut row = vec![format!("{d:.0}us")];
        for &m in &bursts {
            let point = sig
                .points
                .iter()
                .find(|p| p.burst == m && (p.delta_us - d).abs() < 1e-9)
                .expect("grid point");
            row.push(fmt_f(point.interval_us, 2));
        }
        t.push_row(row);
    }
    println!("{t}");
}

fn main() {
    print_signature(
        "Figure 3: LogP signature, baseline NOW (us/message)",
        NetConfig::berkeley_now(),
    );
    // The paper's plotted calibration: desired g = 14 us (Δg = 8.2).
    let g14 = NetConfig::berkeley_now().with_knobs(Knobs::with_gap(SimDelta::from_micros(8.2)));
    print_signature(
        "Figure 3: LogP signature, desired g = 14us (us/message)",
        g14,
    );
    println!(
        "read-off: o_send = burst-1 interval; g = bottom-right plateau;\n\
         o_recv = (large-delta plateau) - delta - o_send.\n\
         Paper's g=14 signature showed o_send=1.8, o_recv=4, g=12.8."
    );
}
