//! Figure 4 — communication balance: the 32×32 sender→receiver message
//! matrix of every application, rendered in ASCII greyscale (' ' = zero,
//! '@' = the per-application maximum).

use nowlab_am::render_balance_matrix;
use nowlab_bench::{spec, suite};

fn main() {
    for app in suite() {
        let out = app.run(&spec(32));
        assert!(out.completed, "{} failed", app.name());
        println!(
            "--- Figure 4: {} (max cell {} msgs, balance {:.2}) ---",
            app.name(),
            out.stats.matrix_max(),
            out.stats.balance()
        );
        println!("{}", render_balance_matrix(&out.stats));
    }
    println!(
        "reproduction targets: Radix's off-diagonal histogram line over a\n\
         grey all-to-all; EM3D's near-diagonal locality swath; Sample's\n\
         vertical receiver bars; NOW-sort's solid square; P-Ray hot spots."
    );
}
