//! Extension — where does the time go? Per-application breakdown of
//! processor time into computation, message overhead, and pure network
//! wait, at the baseline and under LAN-class overhead.
//!
//! This makes the paper's §5 mechanics visible directly: overhead-driven
//! slowdown shows up as the `o` column exploding, latency/gap-driven
//! slowdown as the `wait` column, and overhead tolerance (NOW-sort) as a
//! large `wait`(disk) share that absorbs the added cost.

use nowlab_bench::{spec, suite};
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, NetConfig};

fn breakdown_row(app: &dyn nowlab_core::SweepableApp, net: NetConfig) -> Option<[String; 4]> {
    let out = app.run(&spec(32).with_net(net));
    if !out.completed {
        return None;
    }
    let (compute, overhead, wait, other) = out.stats.time_breakdown();
    Some([
        fmt_f(compute * 100.0, 1),
        fmt_f(overhead * 100.0, 1),
        fmt_f(wait * 100.0, 1),
        fmt_f(other * 100.0, 1),
    ])
}

fn main() {
    let base = NetConfig::berkeley_now();
    let lan = base.with_knobs(
        Axis::Overhead
            .knobs_for(&base.machine, 53.0)
            .expect("53us above baseline"),
    );
    let mut t = Table::new(
        "Time breakdown (% of runtime, averaged over 32 processors): baseline | o=53us",
        &[
            "app",
            "compute",
            "overhead",
            "net wait",
            "other",
            "compute'",
            "overhead'",
            "net wait'",
            "other'",
        ],
    );
    for app in suite() {
        let b = breakdown_row(app.as_ref(), base);
        let s = breakdown_row(app.as_ref(), lan);
        let mut row = vec![app.name().to_string()];
        for cells in [b, s] {
            match cells {
                Some(c) => row.extend(c),
                None => row.extend(["N/A".to_string(), "N/A".into(), "N/A".into(), "N/A".into()]),
            }
        }
        t.push_row(row);
    }
    println!("{t}");
    println!(
        "reading: under added overhead the o-column should swallow the\n\
         frequent communicators' runtime; NOW-sort's disk wait dominates\n\
         both columns (why it tolerates overhead); read-based apps carry\n\
         visible net-wait even at baseline."
    );
}
