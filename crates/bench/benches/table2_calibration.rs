//! Table 2 — calibration summary: for each *desired* setting of o, g, and
//! L, the observed values of all three parameters, demonstrating that the
//! knobs hit their targets and are independent of one another.
//!
//! Expected artifacts (both in the paper and here): raising `o` raises the
//! effective `g` by `2·Δo` (the processor becomes the bottleneck); very
//! large `L` raises the effective `g` because the flow-control window is
//! constant rather than scaling with `L/g`.

use nowlab_core::calib::calibrate;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Axis, NetConfig};

fn main() {
    let base = NetConfig::berkeley_now();
    let panels = [
        (Axis::Overhead, "desired o"),
        (Axis::Gap, "desired g"),
        (Axis::Latency, "desired L"),
    ];
    for (axis, label) in panels {
        let mut t = Table::new(
            format!("Table 2 panel: varying {axis}"),
            &[label, "o", "g", "L"],
        );
        for desired in axis.paper_values() {
            let knobs = axis
                .knobs_for(&base.machine, desired)
                .expect("desired >= baseline");
            let c = calibrate(base.with_knobs(knobs));
            t.push_row([
                fmt_f(desired, 1),
                fmt_f(c.o_mean_us(), 1),
                fmt_f(c.gap_us, 1),
                fmt_f(c.latency_us, 1),
            ]);
        }
        println!("{t}");
    }
    println!(
        "paper reference: o=103 desired -> observed o=103.0 g=205.9 L=6.0;\n\
         g=105 desired -> observed g=99, o=3.0, L=5.5;\n\
         L=105 desired -> observed L=105.5, o=3.0, g=27.7."
    );
}
