//! Table 1 — baseline LogGP parameters of the Berkeley NOW, with the
//! Intel Paragon and Meiko CS-2 for comparison, each *measured* by the
//! §3.3 microbenchmarks on the corresponding machine model.

use nowlab_core::calib::{calibrate, calibrate_bulk};
use nowlab_core::report::Table;
use nowlab_core::NetConfig;

fn main() {
    let machines = [
        ("Berkeley NOW", nowlab_am::LoggpParams::berkeley_now()),
        ("Intel Paragon", nowlab_am::LoggpParams::intel_paragon()),
        ("Meiko CS-2", nowlab_am::LoggpParams::meiko_cs2()),
    ];
    let paper: [(f64, f64, f64, f64); 3] = [
        (2.9, 5.8, 5.0, 38.0),
        (1.8, 7.6, 6.5, 141.0),
        (1.7, 13.6, 7.5, 47.0),
    ];
    let mut t = Table::new(
        "Table 1: Baseline LogGP parameters (measured / paper)",
        &["platform", "o (us)", "g (us)", "L (us)", "MB/s (1/G)"],
    );
    for ((name, m), (po, pg, pl, pb)) in machines.iter().zip(paper) {
        let cfg = NetConfig::berkeley_now().with_machine(*m);
        let c = calibrate(cfg);
        let bw = calibrate_bulk(cfg);
        t.push_row([
            name.to_string(),
            format!("{:.1} / {po:.1}", c.o_mean_us()),
            format!("{:.1} / {pg:.1}", c.gap_us),
            format!("{:.1} / {pl:.1}", c.latency_us),
            format!("{bw:.0} / {pb:.0}"),
        ]);
    }
    println!("{t}");
}
