//! §5.5 summary — linearity of the responses: least-squares fits of
//! slowdown vs parameter value for the overhead and gap sweeps, plus the
//! per-axis sensitivity ranking.
//!
//! Reproduction target: "all the applications display a linear dependence
//! to both overhead and gap" — R² near 1 for every completing app — which
//! is the paper's argument that further communication-performance
//! improvements keep paying off.

use nowlab_bench::{sweep_suite, EVENT_LIMIT};
use nowlab_core::report::{fmt_f, fmt_or_na, Table};
use nowlab_core::Axis;

fn main() {
    let _ = EVENT_LIMIT;
    let mut t = Table::new(
        "Linearity of slowdown responses (32 nodes)",
        &[
            "app",
            "o slope (1/us)",
            "o R^2",
            "g slope (1/us)",
            "g R^2",
            "max slowdown @o",
            "max slowdown @g",
        ],
    );
    let o_sweeps = sweep_suite(32, Axis::Overhead, &Axis::Overhead.paper_values());
    let g_sweeps = sweep_suite(32, Axis::Gap, &Axis::Gap.paper_values());
    for (o, g) in o_sweeps.iter().zip(&g_sweeps) {
        assert_eq!(o.app, g.app);
        let of = o.linearity();
        let gf = g.linearity();
        t.push_row([
            o.app.clone(),
            fmt_or_na(of.map(|f| f.slope), 4),
            fmt_or_na(of.map(|f| f.r2), 4),
            fmt_or_na(gf.map(|f| f.slope), 4),
            fmt_or_na(gf.map(|f| f.r2), 4),
            fmt_f(o.max_slowdown(), 2),
            fmt_f(g.max_slowdown(), 2),
        ]);
    }
    println!("{t}");

    // Sensitivity ranking per axis (by max slowdown).
    for (axis, sweeps) in [(Axis::Overhead, &o_sweeps), (Axis::Gap, &g_sweeps)] {
        let mut ranked: Vec<(&str, f64)> = sweeps
            .iter()
            .map(|s| (s.app.as_str(), s.max_slowdown()))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let list: Vec<String> = ranked
            .iter()
            .map(|(n, s)| format!("{n}({s:.1}x)"))
            .collect();
        println!("{axis} sensitivity ranking: {}", list.join(" > "));
    }
    println!(
        "\npaper: overhead and gap responses are linear; the frequent four\n\
         (Radix, EM3D both, Sample) lead both rankings."
    );
}
