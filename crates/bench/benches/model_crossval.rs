//! Extension — cross-validation of the compound LogGP sensitivity model.
//!
//! The paper validates one-knob-at-a-time predictors (Tables 5 and 6). An
//! obvious question it leaves open is whether the effects *compose*: does
//! `r_base + 2mΔo + mΔg + m_rt·ΔL + B·ΔG` predict runs where several
//! parameters degrade together (as they would in a real LAN)? This bench
//! fits [`nowlab_core::SensitivityModel`] on each application's baseline
//! and scores it on three mixed knob vectors.

use nowlab_bench::{spec, suite};
use nowlab_core::models::rel_error;
use nowlab_core::report::{fmt_f, Table};
use nowlab_core::{Knobs, SensitivityModel, SimDelta};

fn mixed_vectors() -> Vec<(&'static str, Knobs)> {
    vec![
        (
            "mild (o+5, g+10, L+20)",
            Knobs {
                d_o: SimDelta::from_micros(5.0),
                d_g: SimDelta::from_micros(10.0),
                d_lat: SimDelta::from_micros(20.0),
                d_gap_per_byte: SimDelta::ZERO,
            },
        ),
        (
            "LAN-ish (o+50, g+20, L+50)",
            Knobs {
                d_o: SimDelta::from_micros(50.0),
                d_g: SimDelta::from_micros(20.0),
                d_lat: SimDelta::from_micros(50.0),
                d_gap_per_byte: SimDelta::ZERO,
            },
        ),
        (
            "slow wire (L+80, G->5MB/s)",
            Knobs {
                d_o: SimDelta::ZERO,
                d_g: SimDelta::ZERO,
                d_lat: SimDelta::from_micros(80.0),
                d_gap_per_byte: SimDelta::from_nanos(200 - 26),
            },
        ),
    ]
}

fn main() {
    let vectors = mixed_vectors();
    let mut headers = vec!["app".to_string()];
    for (name, _) in &vectors {
        headers.push(format!("{name} pred/meas"));
    }
    let mut t = Table::new(
        "Extension: compound-model cross-validation (32 nodes)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for app in suite() {
        let template = spec(32);
        let baseline = app.run(&template);
        assert!(baseline.completed, "{} baseline failed", app.name());
        let model = SensitivityModel::from_baseline(&baseline);
        let mut row = vec![app.name().to_string()];
        for (_, knobs) in &vectors {
            let out = app.run(&template.with_net(template.net.with_knobs(*knobs)));
            if !out.completed {
                row.push("N/A".into());
                continue;
            }
            let pred = model.predict(knobs);
            let err = rel_error(pred, out.runtime);
            row.push(format!(
                "{} ({}%)",
                fmt_f(pred.as_secs_f64() / out.runtime.as_secs_f64(), 2),
                fmt_f(err * 100.0, 0)
            ));
        }
        t.push_row(row);
    }
    println!("{t}");
    println!(
        "expectation: composition holds about as well as the per-axis models\n\
         — accurate for the balanced frequent communicators, under-predicting\n\
         the serial-phase and contention apps (Radix, Barnes)."
    );
}
