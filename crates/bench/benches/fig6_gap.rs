//! Figure 6 — sensitivity to gap on 32 nodes: slowdown vs gap in µs.
//!
//! Reproduction targets: only the frequent communicators feel the gap
//! strongly (they try to send faster than 1/g); infrequent apps shrug off
//! even 100 µs of added gap; responses are roughly linear (communication
//! is bursty — the burst model of §5.2).

use nowlab_bench::{print_slowdown_table, sweep_suite};
use nowlab_core::Axis;

fn main() {
    let values = Axis::Gap.paper_values();
    let sweeps = sweep_suite(32, Axis::Gap, &values);
    print_slowdown_table("Figure 6: slowdown vs gap (us), 32 nodes", &sweeps, &values);
    println!(
        "paper: Radix/EM3D/Sample slow up to ~16x at g=105us; the rest stay\n\
         under ~4x."
    );
}
