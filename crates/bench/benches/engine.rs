//! Criterion benchmarks of the simulator engine itself (wall-clock
//! performance, not virtual time): event throughput, message round trips,
//! and barrier cost. These bound how large an experiment the apparatus
//! can drive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nowlab_am::{AmCluster, Mark, NetConfig, Payload, ReplyData};
use nowlab_sim::{Sim, SimDelta, SimTime};
use nowlab_splitc::{run_spmd, SpmdConfig};

fn bench_timer_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("timer_events_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..N {
                sim.schedule(SimTime::from_nanos(i), |_| {});
            }
            let report = sim.run();
            assert_eq!(report.events_fired, N);
        })
    });
    g.finish();
}

fn bench_round_trips(c: &mut Criterion) {
    let mut g = c.benchmark_group("am");
    const N: usize = 1_000;
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("request_reply_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
            let h = cluster.register_handler(|_| ReplyData::ack());
            let server = cluster.port(1);
            sim.spawn(async move { server.wait_until(|| false).await });
            let port = cluster.port(0);
            let done = sim.spawn(async move {
                for _ in 0..N {
                    port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
                }
                true
            });
            sim.run();
            assert_eq!(done.try_take(), Some(true));
        })
    });
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("splitc");
    g.bench_function("barrier_32procs_x10", |b| {
        b.iter(|| {
            let outcome = run_spmd(&SpmdConfig::new(32), |ctx| async move {
                for _ in 0..10 {
                    ctx.barrier().await;
                }
                ctx.now()
            });
            assert!(outcome.completed);
        })
    });
    g.bench_function("compute_heavy_8procs", |b| {
        b.iter(|| {
            let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
                for _ in 0..500 {
                    ctx.compute(SimDelta::from_micros(1.0)).await;
                }
            });
            assert!(outcome.completed);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_timer_events, bench_round_trips, bench_barrier);
criterion_main!(benches);
