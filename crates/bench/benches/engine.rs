//! Wall-clock benchmarks of the simulator engine itself (not virtual
//! time): event throughput, message round trips, and barrier cost. These
//! bound how large an experiment the apparatus can drive.
//!
//! Timing uses plain `std::time::Instant` loops (best-of-N) so the bench
//! builds with no external harness. Pass `--test` for a single-iteration
//! smoke run.

use std::time::Instant;

use nowlab_am::{AmCluster, Mark, NetConfig, Payload, ReplyData};
use nowlab_sim::{Sim, SimDelta, SimTime};
use nowlab_splitc::{run_spmd, SpmdConfig};

/// Runs `f` `iters` times and reports the best per-iteration wall time.
fn bench(name: &str, iters: u32, elements: Option<u64>, mut f: impl FnMut()) {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rate = elements
        .map(|n| format!("  ({:.1} Melem/s)", n as f64 / best / 1e6))
        .unwrap_or_default();
    println!("{name:<28} {:>10.3} ms{rate}", best * 1e3);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 10 };

    const TIMERS: u64 = 10_000;
    bench("timer_events_10k", iters, Some(TIMERS), || {
        let sim = Sim::new();
        for i in 0..TIMERS {
            sim.schedule(SimTime::from_nanos(i), |_| {});
        }
        let report = sim.run();
        assert_eq!(report.events_fired, TIMERS);
    });

    const RTT: usize = 1_000;
    bench("request_reply_1k", iters, Some(RTT as u64), || {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        let h = cluster.register_handler(|_| ReplyData::ack());
        let server = cluster.port(1);
        sim.spawn(async move { server.wait_until(|| false).await });
        let port = cluster.port(0);
        let done = sim.spawn(async move {
            for _ in 0..RTT {
                port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
            }
            true
        });
        sim.run();
        assert_eq!(done.try_take(), Some(true));
    });

    bench("barrier_32procs_x10", iters, None, || {
        let outcome = run_spmd(&SpmdConfig::new(32), |ctx| async move {
            for _ in 0..10 {
                ctx.barrier().await;
            }
            ctx.now()
        });
        assert!(outcome.completed);
    });

    bench("compute_heavy_8procs", iters, None, || {
        let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
            for _ in 0..500 {
                ctx.compute(SimDelta::from_micros(1.0)).await;
            }
        });
        assert!(outcome.completed);
    });
}
