//! Figure 8 — sensitivity to bulk Gap on 32 nodes: slowdown vs maximum
//! available bulk bandwidth (MB/s), swept downward from the 38 MB/s
//! baseline to 1 MB/s.
//!
//! Reproduction targets: weak sensitivity overall (the paper sees no more
//! than ~3x even at 1 MB/s); nothing reacts until bandwidth falls below
//! ~15 MB/s; NOW-sort stays flat until the network drops below a single
//! disk's 5.5 MB/s and only then bends (it is disk-limited).

use nowlab_bench::{print_slowdown_table, sweep_suite};
use nowlab_core::Axis;

fn main() {
    let values = Axis::BulkBandwidth.paper_values();
    let sweeps = sweep_suite(32, Axis::BulkBandwidth, &values);
    print_slowdown_table(
        "Figure 8: slowdown vs bulk bandwidth (MB/s), 32 nodes",
        &sweeps,
        &values,
    );
    println!(
        "paper: bulk users (Radb, NOW-sort, Murphi, P-Ray, Barnes) react\n\
         below ~15 MB/s; short-message apps are flat; NOW-sort's knee is at\n\
         the 5.5 MB/s disk rate."
    );
}
