//! Pure-kernel throughput microbench: timer churn with no applications.
//!
//! Where `sweep_throughput` measures the whole apparatus (apps + AM layer +
//! sweep engine), this bench isolates the event kernel itself — wheel push,
//! batch extraction, wake-log drain, hook dispatch — so kernel regressions
//! are visible without application noise. Five workloads:
//!
//! * `timer_churn` — tasks looping short `delay()`s (the Sleep/wake path);
//! * `callback_storm` — self-rescheduling boxed `schedule` callbacks
//!   (slab + wheel, one allocation per event);
//! * `hook_dispatch` — the same chains through `register_hook` /
//!   `schedule_hook` (allocation-free hot path);
//! * `same_instant` — wide ties at each instant (batch extraction);
//! * `far_timers` — delays beyond the wheel horizon (overflow heap and
//!   promotion).
//!
//! Every workload's `events_fired`/`polls` are exact functions of its
//! parameters and are asserted on every run — CI runs `--test`, so a
//! kernel change that alters event accounting fails the bench before any
//! golden file is compared. Measurements land in `BENCH_kernel.json`
//! (override with `NOWLAB_BENCH_KERNEL_JSON`); pass `--test` for a
//! truncated single-iteration smoke run.

use std::time::Instant;

use nowlab_sim::{Sim, SimDelta, SimTime, StopReason};

struct Workload {
    name: &'static str,
    /// Exact events the run must fire (golden; asserted every run).
    events: u64,
    /// Exact polls the run must perform (golden; asserted every run).
    polls: u64,
    run: fn(smoke: bool) -> nowlab_sim::RunReport,
}

/// (tasks, rounds) for the task-based workloads.
fn churn_shape(smoke: bool) -> (u64, u64) {
    if smoke {
        (16, 500)
    } else {
        (64, 80_000)
    }
}

fn timer_churn(smoke: bool) -> nowlab_sim::RunReport {
    let (tasks, rounds) = churn_shape(smoke);
    let sim = Sim::with_capacity(tasks as usize);
    for i in 0..tasks {
        let s = sim.clone();
        sim.spawn(async move {
            for r in 0..rounds {
                // Varied short deltas: spreads entries across ring buckets.
                let ns = (i * 7 + r * 13) % 97 + 1;
                s.delay(SimDelta::from_nanos(ns)).await;
            }
        });
    }
    sim.run()
}

/// (chains, rounds) for the callback/hook workloads.
fn storm_shape(smoke: bool) -> (u64, u64) {
    if smoke {
        (8, 1_000)
    } else {
        (16, 300_000)
    }
}

fn callback_storm(smoke: bool) -> nowlab_sim::RunReport {
    let (chains, rounds) = storm_shape(smoke);
    fn step(sim: &Sim, chain: u64, remaining: u64) {
        if remaining == 0 {
            return;
        }
        let stride = chain % 13 + 1;
        sim.schedule_in(SimDelta::from_nanos(stride), move |sim| {
            step(sim, chain, remaining - 1)
        });
    }
    let sim = Sim::new();
    for c in 0..chains {
        step(&sim, c, rounds);
    }
    sim.run()
}

fn hook_dispatch(smoke: bool) -> nowlab_sim::RunReport {
    let (chains, rounds) = storm_shape(smoke);
    let sim = Sim::new();
    // Token encodes (chain, remaining): the chain picks the stride, the
    // remainder self-reschedules through the same hook — zero allocations
    // per event.
    let hook_cell = std::rc::Rc::new(std::cell::Cell::new(None));
    let hc = std::rc::Rc::clone(&hook_cell);
    let hook = sim.register_hook(move |sim, token| {
        let chain = token >> 32;
        let remaining = token & u64::from(u32::MAX);
        if remaining > 1 {
            let stride = chain % 13 + 1;
            let at = sim.now() + SimDelta::from_nanos(stride);
            sim.schedule_hook(
                at,
                hc.get().expect("hook id set"),
                (chain << 32) | (remaining - 1),
            );
        }
    });
    hook_cell.set(Some(hook));
    for c in 0..chains {
        sim.schedule_hook(SimTime::from_nanos(c % 13 + 1), hook, (c << 32) | rounds);
    }
    sim.run()
}

/// (instants, width) for the tie-batch workload.
fn tie_shape(smoke: bool) -> (u64, u64) {
    if smoke {
        (200, 32)
    } else {
        (40_000, 128)
    }
}

fn same_instant(smoke: bool) -> nowlab_sim::RunReport {
    let (instants, width) = tie_shape(smoke);
    let sim = Sim::new();
    for t in 0..instants {
        for _ in 0..width {
            sim.schedule(SimTime::from_nanos((t + 1) * 50), |_| {});
        }
    }
    sim.run()
}

/// (tasks, rounds) for the overflow workload.
fn far_shape(smoke: bool) -> (u64, u64) {
    if smoke {
        (8, 250)
    } else {
        (32, 150_000)
    }
}

fn far_timers(smoke: bool) -> nowlab_sim::RunReport {
    let (tasks, rounds) = far_shape(smoke);
    let sim = Sim::with_capacity(tasks as usize);
    for i in 0..tasks {
        let s = sim.clone();
        sim.spawn(async move {
            for r in 0..rounds {
                // ≥1 ms: far beyond even the largest ring horizon
                // (8192 buckets x 256 ns ≈ 2.1 ms holds only when the
                // wheel grows; this pre-sized one spans ≈262 µs), so
                // every push lands in the overflow heap and is promoted
                // later.
                let ns = 1_000_000 + (i * 977 + r * 131) % 50_000;
                s.delay(SimDelta::from_nanos(ns)).await;
            }
        });
    }
    sim.run()
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let (ct, cr) = churn_shape(smoke);
    let (sc, sr) = storm_shape(smoke);
    let (ti, tw) = tie_shape(smoke);
    let (ft, fr) = far_shape(smoke);
    vec![
        Workload {
            name: "timer_churn",
            events: ct * cr,
            polls: ct * (cr + 1),
            run: timer_churn,
        },
        Workload {
            name: "callback_storm",
            events: sc * sr,
            polls: 0,
            run: callback_storm,
        },
        Workload {
            name: "hook_dispatch",
            events: sc * sr,
            polls: 0,
            run: hook_dispatch,
        },
        Workload {
            name: "same_instant",
            events: ti * tw,
            polls: 0,
            run: same_instant,
        },
        Workload {
            name: "far_timers",
            events: ft * fr,
            polls: ft * (fr + 1),
            run: far_timers,
        },
    ]
}

struct Measurement {
    name: &'static str,
    events: u64,
    wall_s: f64,
}

fn emit_json(measurements: &[Measurement]) {
    let path = std::env::var("NOWLAB_BENCH_KERNEL_JSON")
        .unwrap_or_else(|_| "BENCH_kernel.json".to_string());
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\"workload\": \"{}\", \"events\": {}, \"wall_s\": {:.6}, \
                 \"events_per_s\": {:.1}}}",
                m.name,
                m.events,
                m.wall_s,
                m.events as f64 / m.wall_s
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(measurements saved to {path})"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 3 };
    let mut measurements = Vec::new();
    for w in workloads(smoke) {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            let report = (w.run)(smoke);
            best = best.min(t0.elapsed().as_secs_f64());
            // Event/poll accounting is a golden: any drift is a kernel
            // semantics change, not a perf change — fail loudly.
            assert_eq!(report.stop_reason, StopReason::Idle, "{}", w.name);
            assert_eq!(
                report.events_fired, w.events,
                "{}: events_fired drifted from golden",
                w.name
            );
            assert_eq!(
                report.polls, w.polls,
                "{}: polls drifted from golden",
                w.name
            );
            assert_eq!(report.unfinished_tasks, 0, "{}", w.name);
        }
        println!(
            "{:<16} {:>10} events  {:>8.3} s  {:>12.0} events/s",
            w.name,
            w.events,
            best,
            w.events as f64 / best
        );
        measurements.push(Measurement {
            name: w.name,
            events: w.events,
            wall_s: best,
        });
    }
    emit_json(&measurements);
}
