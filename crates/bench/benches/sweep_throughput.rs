//! Throughput benchmark of the sweep engine itself (wall clock, not
//! virtual time): how fast the apparatus regenerates a fixed sensitivity
//! workload — Radix and EM3D(write) swept along the latency and overhead
//! axes — sequentially and with the parallel run-boundary worker pool.
//!
//! Reports simulator events per wall-second and seconds per sweep for each
//! worker count, asserts the parallel results are **byte-identical** to
//! `--jobs 1`, and emits the measurements as `BENCH_sweep.json` (override
//! the path with `NOWLAB_BENCH_JSON`). Pass `--test` for a truncated
//! single-iteration smoke run.

use std::time::Instant;

use nowlab_bench::{env_scale, spec};
use nowlab_core::{default_jobs, sweep_many, Axis, AxisSweep, SweepableApp};

/// The fixed workload: each app swept along each axis.
const AXES: [Axis; 2] = [Axis::Latency, Axis::Overhead];

fn workload_apps() -> Vec<Box<dyn SweepableApp>> {
    let wanted = ["radix", "em3dwrite"];
    let norm = |s: &str| -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let apps: Vec<Box<dyn SweepableApp>> = nowlab_apps::suite_scaled(env_scale())
        .into_iter()
        .filter(|a| wanted.contains(&norm(a.name()).as_str()))
        .collect();
    assert_eq!(apps.len(), wanted.len(), "workload apps missing from suite");
    apps
}

/// Runs the whole workload at one worker count; returns the sweeps and the
/// total simulator events they fired.
fn run_workload(
    apps: &[Box<dyn SweepableApp>],
    procs: usize,
    values_cap: usize,
    jobs: usize,
) -> (Vec<AxisSweep>, u64) {
    let mut sweeps = Vec::new();
    for axis in AXES {
        let mut values = axis.paper_values();
        values.truncate(values_cap);
        for result in sweep_many(apps, &spec(procs), axis, &values, jobs) {
            sweeps.push(result.unwrap_or_else(|e| panic!("workload sweep failed: {e}")));
        }
    }
    let events = sweeps.iter().map(AxisSweep::total_events).sum();
    (sweeps, events)
}

struct Measurement {
    jobs: usize,
    wall_s: f64,
    events: u64,
}

fn emit_json(workload: &str, measurements: &[Measurement]) {
    let path =
        std::env::var("NOWLAB_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\"workload\": \"{workload}\", \"jobs\": {}, \"wall_s\": {:.6}, \
                 \"events\": {}, \"events_per_s\": {:.1}}}",
                m.jobs,
                m.wall_s,
                m.events,
                m.events as f64 / m.wall_s
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(measurements saved to {path})"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 1 } else { 3 };
    let (procs, values_cap) = if smoke { (4, 3) } else { (16, usize::MAX) };
    let apps = workload_apps();
    let workload = format!("radix+em3dwrite x latency+overhead, {procs} procs");

    // Worker counts to measure: `NOWLAB_BENCH_JOBS="1,2,4"` pins them;
    // otherwise the sequential baseline, then the host's parallelism (and
    // a midpoint when the host is wide enough).
    let host = default_jobs();
    let mut job_counts: Vec<usize> = std::env::var("NOWLAB_BENCH_JOBS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_default();
    if job_counts.is_empty() {
        job_counts.push(1);
        if host >= 4 {
            job_counts.push(host / 2);
        }
        if host > 1 {
            job_counts.push(host);
        }
        if smoke && !job_counts.contains(&2) {
            job_counts.push(2); // always exercise the threaded path in CI
        }
    } else if job_counts[0] != 1 {
        job_counts.insert(0, 1); // the sequential baseline anchors everything
    }
    job_counts.dedup();

    let mut baseline: Option<(Vec<AxisSweep>, f64)> = None;
    let mut measurements = Vec::new();
    for &jobs in &job_counts {
        let mut best = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..iters {
            let t0 = Instant::now();
            let (sweeps, events) = run_workload(&apps, procs, values_cap, jobs);
            best = best.min(t0.elapsed().as_secs_f64());
            outcome = Some((sweeps, events));
        }
        let (sweeps, events) = outcome.expect("at least one iteration ran");
        match &baseline {
            None => baseline = Some((sweeps, best)),
            Some((seq_sweeps, seq_best)) => {
                assert_eq!(
                    &sweeps, seq_sweeps,
                    "jobs={jobs} output diverged from the sequential sweep"
                );
                println!(
                    "jobs={jobs:<3} {:>8.3} s/sweep  {:>12.0} events/s  (speedup {:.2}x, \
                     byte-identical to jobs=1)",
                    best,
                    events as f64 / best,
                    seq_best / best
                );
            }
        }
        if jobs == 1 {
            println!(
                "jobs=1   {:>8.3} s/sweep  {:>12.0} events/s  (sequential baseline)",
                best,
                events as f64 / best
            );
        }
        measurements.push(Measurement {
            jobs,
            wall_s: best,
            events,
        });
    }
    println!("host parallelism: {host} (measurements above are wall clock)");
    emit_json(&workload, &measurements);
}
