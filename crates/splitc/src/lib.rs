//! # nowlab-splitc — a Split-C-style PGAS layer over Active Messages
//!
//! The benchmark suite of Martin et al. (ISCA 1997) is written in Split-C, a
//! parallel C dialect providing a global address space over Generic Active
//! Messages. This crate recreates that programming layer on top of
//! [`nowlab_am`]: SPMD processes hold a [`Ctx`] offering
//!
//! * global pointers ([`GlobalPtr`]) into word-addressed regions,
//! * blocking reads and **pipelined** writes with [`Ctx::sync`] completion
//!   (the read-based vs write-based distinction the paper leans on),
//! * atomic fetch-add / compare-swap at the owner, and spin locks,
//! * bulk put/get using the Active-Message bulk mechanism,
//! * collectives: a dissemination [`Ctx::barrier`], [`Ctx::allreduce_sum`],
//!   and a binomial-tree [`Ctx::broadcast_words`],
//! * one-way user active messages into [`Memory`] mailboxes (task queues).
//!
//! Every remote operation pays the LogGP costs configured on the cluster, so
//! programs written against this API inherit the full sensitivity apparatus.
//!
//! # Examples
//!
//! A global histogram via remote fetch-add:
//!
//! ```
//! use nowlab_splitc::{run_spmd, SpmdConfig, GlobalPtr};
//!
//! let outcome = run_spmd(&SpmdConfig::new(4), |ctx| async move {
//!     let hist = ctx.alloc_region(2);
//!     ctx.barrier().await;
//!     // Everyone increments bucket (me % 2) on the owner (me % procs/2).
//!     let bucket = ctx.me() % 2;
//!     ctx.fetch_add(GlobalPtr::new(0, hist, bucket), 1).await;
//!     ctx.barrier().await;
//!     if ctx.me() == 0 {
//!         ctx.load_local(hist, 0) + ctx.load_local(hist, 1)
//!     } else {
//!         0
//!     }
//! });
//! assert_eq!(outcome.expect_outputs()[0], 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod layer;
mod memory;

pub use ctx::Ctx;
pub use layer::{run_spmd, DegradePolicy, Prims, SplitC, SpmdConfig, SpmdOutcome};
pub use memory::{barrier_rounds, GlobalPtr, MailMsg, MailboxId, Memory, RegionId};

// Re-export the payload type applications use with mailboxes, and the
// structured abort the node-failure model surfaces.
pub use nowlab_am::{Payload, RunAbort};

// Re-export the collective-layer configuration vocabulary so applications
// and the run plumbing can name algorithm policies without importing the
// coll crate directly (apps reach collectives through [`Ctx`] only; see
// lint LAY003).
pub use nowlab_coll::model::{allgather_us, alltoall_us, bcast_us, reduce_us};
pub use nowlab_coll::{A2aAlgo, BcastAlgo, CollAlgo, CollConfig, GatherAlgo, ReduceAlgo, Selector};

// Re-export the time vocabulary so applications can talk about durations
// without reaching below the Split-C layer (see lint LAY003).
pub use nowlab_sim::{SimDelta, SimTime};
