//! The Split-C layer: primitive handlers, SPMD configuration, and the
//! runner.
//!
//! [`SplitC`] builds a cluster whose processors each hold a
//! [`Memory`](crate::Memory), registers the primitive Active-Message
//! handlers (read, write, fetch-add, compare-swap, bulk put/get, barrier,
//! mailbox enqueue, reduction), and runs one SPMD body per processor.

use std::future::Future;

use nowlab_am::{AmCluster, CommStats, HandlerId, Msg, NetConfig, Payload, ReplyData, RunAbort};
use nowlab_coll::{CollConfig, CollHandlers};
use nowlab_sim::{RunReport, Sim, SimDelta, SimTime, StopReason};

use crate::ctx::Ctx;
use crate::memory::{MailMsg, Memory};

/// Handler ids of the Split-C primitives, registered once per cluster.
#[derive(Clone, Copy, Debug)]
pub struct Prims {
    pub(crate) read: HandlerId,
    pub(crate) write: HandlerId,
    pub(crate) fadd: HandlerId,
    pub(crate) cswap: HandlerId,
    pub(crate) bulk_put: HandlerId,
    pub(crate) bulk_scatter: HandlerId,
    pub(crate) bulk_get: HandlerId,
    pub(crate) barrier: HandlerId,
    pub(crate) enqueue: HandlerId,
    pub(crate) reduce_contrib: HandlerId,
    pub(crate) reduce_result: HandlerId,
    pub(crate) bcast: HandlerId,
}

/// How an SPMD program reacts to a confirmed peer death (the node-level
/// failure model; inert unless the run's [`NetConfig`] carries an active
/// [`nowlab_am::NodeFaultPlan`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Halt the simulation at the first confirmed death and report a
    /// structured [`RunAbort`] — for applications whose result is
    /// meaningless with a member missing (sorts, graph codes).
    #[default]
    Abort,
    /// Survivors press on with the remaining membership and report a
    /// degraded (partial) result — for embarrassingly-parallel phases
    /// where per-processor contributions are independent.
    Continue,
}

/// Configuration of one SPMD run.
#[derive(Clone, Copy, Debug)]
pub struct SpmdConfig {
    /// Number of processors.
    pub procs: usize,
    /// Network configuration (machine baseline + knobs).
    pub net: NetConfig,
    /// Abort the run after this many simulation events (livelock guard).
    pub event_limit: Option<u64>,
    /// Abort the run at this virtual time.
    pub time_limit: Option<SimDelta>,
    /// Reaction to a confirmed peer death (node-failure runs only).
    pub degrade: DegradePolicy,
    /// Collective-algorithm policy (see [`CollConfig`]).
    pub coll: CollConfig,
}

impl SpmdConfig {
    /// A run of `procs` processors on the Berkeley NOW baseline.
    pub fn new(procs: usize) -> Self {
        SpmdConfig {
            procs,
            net: NetConfig::berkeley_now(),
            event_limit: None,
            time_limit: None,
            degrade: DegradePolicy::Abort,
            coll: CollConfig::default(),
        }
    }

    /// Replaces the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the livelock event budget.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = Some(limit);
        self
    }

    /// Sets the virtual-time budget.
    pub fn with_time_limit(mut self, limit: SimDelta) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the reaction to a confirmed peer death.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Sets the collective-algorithm policy.
    pub fn with_coll(mut self, coll: CollConfig) -> Self {
        self.coll = coll;
        self
    }
}

/// Result of one SPMD run.
#[derive(Debug)]
pub struct SpmdOutcome<T> {
    /// Per-processor outputs (`None` if that processor did not finish —
    /// only possible when a limit aborted the run).
    pub outputs: Vec<Option<T>>,
    /// Virtual time of the measured region (since the last stats reset, or
    /// the whole run).
    pub elapsed: SimDelta,
    /// Communication statistics of the measured region.
    pub stats: CommStats,
    /// True if every processor ran to completion.
    pub completed: bool,
    /// The death that aborted the run, when [`DegradePolicy::Abort`]
    /// halted it (`None` for healthy and degraded-continue runs).
    pub abort: Option<RunAbort>,
    /// The kernel's run report (events, polls, stop reason).
    pub report: RunReport,
}

impl<T> SpmdOutcome<T> {
    /// Unwraps all outputs.
    ///
    /// # Panics
    ///
    /// Panics if the run did not complete.
    pub fn expect_outputs(self) -> Vec<T> {
        assert!(
            self.completed,
            "SPMD run did not complete (stop reason {:?})",
            self.report.stop_reason
        );
        self.outputs.into_iter().map(Option::unwrap).collect()
    }
}

/// A configured Split-C machine, ready to run one SPMD program.
///
/// # Examples
///
/// ```
/// use nowlab_splitc::{SplitC, SpmdConfig};
///
/// let sc = SplitC::new(&SpmdConfig::new(4));
/// let outcome = sc.run(|ctx| async move {
///     // Everyone allocates the same region, then proc 0's copy is
///     // incremented by everyone.
///     let r = ctx.alloc_region(1);
///     ctx.barrier().await;
///     ctx.fetch_add(nowlab_splitc::GlobalPtr::new(0, r, 0), 1).await;
///     ctx.barrier().await;
///     ctx.read(nowlab_splitc::GlobalPtr::new(0, r, 0)).await
/// });
/// let counts = outcome.expect_outputs();
/// assert!(counts.iter().all(|&c| c == 4));
/// ```
#[derive(Debug)]
pub struct SplitC {
    sim: Sim,
    cluster: AmCluster,
    prims: Prims,
    coll: CollHandlers,
    cfg: SpmdConfig,
}

impl SplitC {
    /// Builds a cluster per `cfg` with the primitive handlers registered
    /// and a fresh [`Memory`] on every processor.
    pub fn new(cfg: &SpmdConfig) -> Self {
        // One SPMD task per processor; pre-sizing the kernel's task table,
        // wake log, timer wheel, and action slab (the kernel budgets ≈4
        // in-flight timers per task — delays, retransmit timers, NIC gap
        // pacing) avoids incremental growth during the cluster's first
        // communication phase. wheel_vs_heap.rs asserts the wheel's bucket
        // array never grows past construction.
        let sim = Sim::with_capacity(cfg.procs);
        let cluster = AmCluster::new(sim.clone(), cfg.net, cfg.procs);
        for p in 0..cfg.procs {
            cluster.set_state(p, Box::new(Memory::new(cfg.procs)));
        }
        let prims = register_prims(&cluster);
        let coll = CollHandlers::register(&cluster, |any| {
            &mut any
                .downcast_mut::<Memory>()
                .expect("Split-C processor state missing")
                .coll
        });
        SplitC {
            sim,
            cluster,
            prims,
            coll,
            cfg: *cfg,
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The underlying cluster (for low-level instrumentation).
    pub fn cluster(&self) -> &AmCluster {
        &self.cluster
    }

    /// Installs a trace sink on the underlying cluster. The first sink
    /// installed wins; later calls are ignored. Sinks observe message
    /// lifecycle events but must never schedule work or mutate simulation
    /// state, so a traced run is event-for-event identical to an untraced
    /// one.
    pub fn set_trace_sink(&self, sink: std::rc::Rc<dyn nowlab_trace::TraceSink>) {
        self.cluster.set_trace_sink(sink);
    }

    /// Installs a metrics sink on the underlying cluster. Same contract
    /// as [`SplitC::set_trace_sink`]: first sink wins, and sinks are
    /// pure observers — a metered run is event-for-event identical to
    /// an unmetered one.
    pub fn set_metrics_sink(&self, sink: std::rc::Rc<dyn nowlab_metrics::MetricsSink>) {
        self.cluster.set_metrics_sink(sink);
    }

    /// Registers an application-defined handler operating on the
    /// destination processor's [`Memory`].
    pub fn register_handler<F>(&self, f: F) -> HandlerId
    where
        F: Fn(&mut Memory, &Msg) -> ReplyData + 'static,
    {
        self.cluster.register_handler(move |hctx| {
            let mem = hctx
                .state
                .downcast_mut::<Memory>()
                .expect("Split-C processor state missing");
            f(mem, hctx.msg)
        })
    }

    /// Runs `body` on every processor and drives the simulation to
    /// completion (or to a configured limit).
    pub fn run<T, F, Fut>(&self, body: F) -> SpmdOutcome<T>
    where
        T: 'static,
        F: Fn(Ctx) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let p = self.cfg.procs;
        let faults = self.cfg.net.node_faults;
        if faults.is_active() && self.cfg.degrade == DegradePolicy::Abort {
            self.cluster.set_abort_on_death(true);
        }
        // A crash-stop processor's body never returns, so the exit
        // protocol below waits only for the processors that *can* finish.
        // (Crash-recovery nodes thaw and complete; stragglers are slow but
        // alive.)
        let expected = (0..p)
            .filter(|&i| {
                faults
                    .fault_of(i)
                    .is_none_or(|f| !f.crashes() || f.recover_at != SimTime::MAX)
            })
            .count();
        // Processors that finish their body keep servicing the network
        // until everyone is done — a read must be servable even if its
        // target already returned (the SPMD runtime's exit protocol).
        let done = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let handles: Vec<_> = (0..p)
            .map(|i| {
                let ctx = Ctx::new(
                    self.cluster.clone(),
                    self.cluster.port(i),
                    self.prims,
                    self.coll,
                    self.cfg.coll,
                );
                let fut = body(ctx);
                let done = std::rc::Rc::clone(&done);
                let cluster = self.cluster.clone();
                let epilogue_port = self.cluster.port(i);
                self.sim.spawn(async move {
                    let out = fut.await;
                    // Drain this processor's outstanding acks before
                    // declaring done: it issues nothing afterwards, so at
                    // the moment the last processor flips `done` every
                    // retransmit queue in the cluster is empty and the
                    // simulation can go idle (no timers re-arming against
                    // a peer that stopped servicing the network).
                    epilogue_port.quiesce().await;
                    done.set(done.get() + 1);
                    if done.get() >= expected {
                        // Stop the heartbeat control plane: everyone who
                        // can finish has, so detection has nothing left
                        // to detect and the event queue may drain.
                        cluster.finish_control();
                    }
                    cluster.poke_all();
                    epilogue_port.wait_until(|| done.get() >= expected).await;
                    out
                })
            })
            .collect();
        self.sim.set_event_limit(self.cfg.event_limit);
        self.sim
            .set_time_limit(self.cfg.time_limit.map(|d| SimTime::ZERO + d));
        let report = self.sim.run();
        let outputs: Vec<Option<T>> = handles.iter().map(|h| h.try_take()).collect();
        let completed = outputs.iter().all(Option::is_some);
        if !completed && std::env::var_os("NOWLAB_DIAG").is_some() {
            eprintln!(
                "incomplete SPMD run: stop={:?} t={} stuck={:?}\n{}",
                report.stop_reason,
                report.final_time,
                outputs
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_none())
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>(),
                self.cluster.transport_diagnostic(),
            );
            for i in 0..p {
                self.cluster.port(i).with_state(|m: &mut Memory| {
                    eprintln!(
                        "proc {i}: barrier_gen={} arrived={:?} reduce_count={} \
                         reduce_gen={} bcast_gen={}",
                        m.barrier_gen,
                        m.barrier_arrived,
                        m.reduce_count,
                        m.reduce_result_gen,
                        m.bcast_gen,
                    );
                });
            }
        }
        // An Idle stop with missing outputs is the *expected* shape of
        // degradation — not a deadlock — when node faults are in play:
        // crashed bodies pend forever, and retransmit exhaustion toward a
        // crashed peer escalates to a peer death (death_note).
        debug_assert!(
            completed
                || report.stop_reason != StopReason::Idle
                || faults.is_active()
                || self.cluster.death_note().is_some(),
            "SPMD program deadlocked: {} of {} processors stuck at {}",
            report.unfinished_tasks,
            p,
            report.final_time
        );
        let abort = if report.stop_reason == StopReason::Halted {
            self.cluster.death_note()
        } else {
            None
        };
        SpmdOutcome {
            outputs,
            elapsed: self.cluster.stats().elapsed,
            stats: self.cluster.stats(),
            completed,
            abort,
            report,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run_spmd<T, F, Fut>(cfg: &SpmdConfig, body: F) -> SpmdOutcome<T>
where
    T: 'static,
    F: Fn(Ctx) -> Fut,
    Fut: Future<Output = T> + 'static,
{
    SplitC::new(cfg).run(body)
}

fn register_prims(cluster: &AmCluster) -> Prims {
    fn mem_of(state: &mut dyn std::any::Any) -> &mut Memory {
        state
            .downcast_mut::<Memory>()
            .expect("Split-C processor state missing")
    }

    let read = cluster.register_handler(move |c| {
        let m = c
            .state
            .downcast_mut::<Memory>()
            .expect("Split-C processor state missing");
        let [r, off, ..] = c.msg.args;
        ReplyData::word(m.load(r as usize, off as usize))
    });
    let write = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [r, off, val, _] = c.msg.args;
        m.store(r as usize, off as usize, val);
        ReplyData::ack()
    });
    let fadd = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [r, off, delta, _] = c.msg.args;
        ReplyData::word(m.fetch_add(r as usize, off as usize, delta))
    });
    let cswap = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [r, off, expected, new] = c.msg.args;
        ReplyData::word(m.compare_swap(r as usize, off as usize, expected, new))
    });
    let bulk_put = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [r, off, ..] = c.msg.args;
        if let Some(words) = c.msg.payload.as_words() {
            let dst = m.region_mut(r as usize);
            let off = off as usize;
            dst[off..off + words.len()].copy_from_slice(words);
        }
        // Synthetic payloads occupy the wire but deposit nothing.
        ReplyData::ack()
    });
    let bulk_scatter = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let r = c.msg.args[0] as usize;
        if let Some(words) = c.msg.payload.as_words() {
            let dst = m.region_mut(r);
            for &w in words {
                dst[(w >> 32) as usize] = w & 0xFFFF_FFFF;
            }
        }
        ReplyData::ack()
    });
    let bulk_get = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [r, off, len, _] = c.msg.args;
        let off = off as usize;
        let words = m.region(r as usize)[off..off + len as usize].to_vec();
        ReplyData::bulk([len, 0, 0, 0], Payload::from_words(words))
    });
    let barrier = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let round = c.msg.args[0] as usize;
        m.barrier_arrived[round] += 1;
        ReplyData::ack()
    });
    let enqueue = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        let [mb, a, b, d] = c.msg.args;
        m.push_mail(
            mb as usize,
            MailMsg {
                src: c.msg.src,
                args: [a, b, d],
                payload: c.msg.payload.clone(),
            },
        );
        ReplyData::ack()
    });
    let reduce_contrib = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        m.reduce_acc = m.reduce_acc.wrapping_add(c.msg.args[0]);
        m.reduce_count += 1;
        ReplyData::ack()
    });
    let reduce_result = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        m.reduce_result = c.msg.args[0];
        m.reduce_result_gen += 1;
        ReplyData::ack()
    });
    let bcast = cluster.register_handler(move |c| {
        let m = mem_of(c.state);
        m.bcast_data = c
            .msg
            .payload
            .as_words()
            .expect("broadcast payload missing")
            .to_vec();
        m.bcast_gen += 1;
        ReplyData::ack()
    });

    Prims {
        read,
        write,
        fadd,
        cswap,
        bulk_put,
        bulk_scatter,
        bulk_get,
        barrier,
        enqueue,
        reduce_contrib,
        reduce_result,
        bcast,
    }
}
