//! Per-processor memory: the local side of the global address space.
//!
//! Each simulated processor owns one [`Memory`]: a set of word-addressed
//! regions (the distributed arrays of Split-C), a set of mailboxes (receive
//! queues for user active messages), the dissemination-barrier counters, the
//! reduction scratchpad, and an opaque application extension slot.
//!
//! The [`Memory`] is installed as the processor's Active-Message user state,
//! so handlers mutate it directly on the destination processor.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

use nowlab_am::Payload;

/// Index of a region within one processor's [`Memory`].
///
/// SPMD programs allocate regions in the same order on every processor, so a
/// `RegionId` names the local slice of one distributed array.
pub type RegionId = usize;

/// Index of a mailbox within one processor's [`Memory`].
pub type MailboxId = usize;

/// A pointer into the global address space: (processor, region, word
/// offset). The Split-C "global pointer".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GlobalPtr {
    /// Owning processor.
    pub proc: usize,
    /// Region on that processor.
    pub region: RegionId,
    /// Word offset within the region.
    pub offset: usize,
}

impl GlobalPtr {
    /// Creates a global pointer.
    pub fn new(proc: usize, region: RegionId, offset: usize) -> Self {
        GlobalPtr {
            proc,
            region,
            offset,
        }
    }

    /// The same pointer displaced by `d` words.
    pub fn offset_by(self, d: usize) -> Self {
        GlobalPtr {
            offset: self.offset + d,
            ..self
        }
    }
}

impl fmt::Display for GlobalPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}:r{}+{}", self.proc, self.region, self.offset)
    }
}

/// A message delivered to a mailbox by a user active message.
#[derive(Clone, Debug)]
pub struct MailMsg {
    /// Sender processor.
    pub src: usize,
    /// Three user argument words (the fourth word addresses the mailbox).
    pub args: [u64; 3],
    /// Optional bulk payload.
    pub payload: Payload,
}

/// One processor's local memory and communication-layer state.
pub struct Memory {
    regions: Vec<Vec<u64>>,
    mailboxes: Vec<VecDeque<MailMsg>>,
    /// Dissemination-barrier arrival counters, one per round.
    pub(crate) barrier_arrived: Vec<u64>,
    /// Barriers this processor has entered.
    pub(crate) barrier_gen: u64,
    /// Reduction scratch: accumulated value (root only).
    pub(crate) reduce_acc: u64,
    /// Reduction scratch: contributions received (root only).
    pub(crate) reduce_count: u64,
    /// Latest broadcast reduction result.
    pub(crate) reduce_result: u64,
    /// Generation of `reduce_result`.
    pub(crate) reduce_result_gen: u64,
    /// Latest broadcast payload (binomial-tree broadcast collective).
    pub(crate) bcast_data: Vec<u64>,
    /// Generation of `bcast_data`.
    pub(crate) bcast_gen: u64,
    /// Broadcasts this processor has consumed. Kept separately from
    /// `bcast_gen` because a broadcast can be *serviced* before the local
    /// processor even enters `broadcast_words` (e.g. while it still waits
    /// in the preceding barrier, if a lost barrier message delays it past
    /// the broadcast's arrival) — a snapshot of `bcast_gen` taken on entry
    /// would then wait for a generation that never comes.
    pub(crate) bcast_taken: u64,
    /// The collectives layer's per-processor state (epoch counters and
    /// in-flight data; see [`nowlab_coll::CollState`]).
    pub(crate) coll: nowlab_coll::CollState,
    /// Application extension state, accessible to custom handlers.
    pub ext: Option<Box<dyn Any>>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("regions", &self.regions.len())
            .field("mailboxes", &self.mailboxes.len())
            .field("barrier_gen", &self.barrier_gen)
            .finish()
    }
}

impl Memory {
    /// Creates a memory for a cluster of `procs` processors.
    pub fn new(procs: usize) -> Self {
        let rounds = barrier_rounds(procs);
        Memory {
            regions: Vec::new(),
            mailboxes: Vec::new(),
            barrier_arrived: vec![0; rounds.max(1)],
            barrier_gen: 0,
            reduce_acc: 0,
            reduce_count: 0,
            reduce_result: 0,
            reduce_result_gen: 0,
            bcast_data: Vec::new(),
            bcast_gen: 0,
            bcast_taken: 0,
            coll: nowlab_coll::CollState::default(),
            ext: None,
        }
    }

    /// Allocates a zero-initialized region of `words` and returns its id.
    pub fn alloc_region(&mut self, words: usize) -> RegionId {
        self.regions.push(vec![0; words]);
        self.regions.len() - 1
    }

    /// Allocates an empty mailbox and returns its id.
    pub fn alloc_mailbox(&mut self) -> MailboxId {
        self.mailboxes.push(VecDeque::new());
        self.mailboxes.len() - 1
    }

    /// Immutable view of a region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist.
    pub fn region(&self, r: RegionId) -> &[u64] {
        self.regions
            .get(r)
            .unwrap_or_else(|| panic!("region {r} not allocated (missing barrier after alloc?)"))
    }

    /// Mutable view of a region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist.
    pub fn region_mut(&mut self, r: RegionId) -> &mut Vec<u64> {
        self.regions
            .get_mut(r)
            .unwrap_or_else(|| panic!("region {r} not allocated (missing barrier after alloc?)"))
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if region or offset are out of bounds.
    pub fn load(&self, r: RegionId, offset: usize) -> u64 {
        self.region(r)[offset]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if region or offset are out of bounds.
    pub fn store(&mut self, r: RegionId, offset: usize, value: u64) {
        self.region_mut(r)[offset] = value;
    }

    /// Atomic fetch-and-add (the simulation is single-threaded; atomicity is
    /// by construction). Returns the previous value.
    pub fn fetch_add(&mut self, r: RegionId, offset: usize, delta: u64) -> u64 {
        let slot = &mut self.region_mut(r)[offset];
        let old = *slot;
        *slot = old.wrapping_add(delta);
        old
    }

    /// Atomic compare-and-swap; returns the previous value (success iff it
    /// equals `expected`).
    pub fn compare_swap(&mut self, r: RegionId, offset: usize, expected: u64, new: u64) -> u64 {
        let slot = &mut self.region_mut(r)[offset];
        let old = *slot;
        if old == expected {
            *slot = new;
        }
        old
    }

    /// Pushes a message into a mailbox.
    ///
    /// # Panics
    ///
    /// Panics if the mailbox does not exist.
    pub fn push_mail(&mut self, mb: MailboxId, msg: MailMsg) {
        self.mailboxes
            .get_mut(mb)
            .unwrap_or_else(|| panic!("mailbox {mb} not allocated"))
            .push_back(msg);
    }

    /// Pops the oldest message from a mailbox.
    pub fn pop_mail(&mut self, mb: MailboxId) -> Option<MailMsg> {
        self.mailboxes.get_mut(mb).and_then(VecDeque::pop_front)
    }

    /// Number of messages waiting in a mailbox.
    pub fn mail_len(&self, mb: MailboxId) -> usize {
        self.mailboxes.get(mb).map_or(0, VecDeque::len)
    }

    /// Typed access to the application extension state.
    ///
    /// # Panics
    ///
    /// Panics if no extension of type `T` is installed.
    pub fn ext_mut<T: 'static>(&mut self) -> &mut T {
        self.ext
            .as_mut()
            .expect("no app extension installed")
            .downcast_mut::<T>()
            .expect("app extension has a different type")
    }
}

/// Number of dissemination-barrier rounds for `procs` processors
/// (`ceil(log2 procs)`).
pub fn barrier_rounds(procs: usize) -> usize {
    if procs <= 1 {
        0
    } else {
        (usize::BITS - (procs - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_match_log2_ceiling() {
        assert_eq!(barrier_rounds(1), 0);
        assert_eq!(barrier_rounds(2), 1);
        assert_eq!(barrier_rounds(3), 2);
        assert_eq!(barrier_rounds(4), 2);
        assert_eq!(barrier_rounds(5), 3);
        assert_eq!(barrier_rounds(16), 4);
        assert_eq!(barrier_rounds(17), 5);
        assert_eq!(barrier_rounds(32), 5);
    }

    #[test]
    fn region_alloc_and_ops() {
        let mut m = Memory::new(4);
        let r = m.alloc_region(8);
        assert_eq!(r, 0);
        assert_eq!(m.load(r, 3), 0);
        m.store(r, 3, 99);
        assert_eq!(m.load(r, 3), 99);
        assert_eq!(m.fetch_add(r, 3, 1), 99);
        assert_eq!(m.load(r, 3), 100);
        assert_eq!(m.compare_swap(r, 3, 100, 7), 100);
        assert_eq!(m.load(r, 3), 7);
        assert_eq!(m.compare_swap(r, 3, 100, 8), 7);
        assert_eq!(m.load(r, 3), 7);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn missing_region_panics_helpfully() {
        let m = Memory::new(2);
        let _ = m.region(0);
    }

    #[test]
    fn mailboxes_are_fifo() {
        let mut m = Memory::new(2);
        let mb = m.alloc_mailbox();
        for i in 0..3 {
            m.push_mail(
                mb,
                MailMsg {
                    src: 1,
                    args: [i, 0, 0],
                    payload: Payload::None,
                },
            );
        }
        assert_eq!(m.mail_len(mb), 3);
        assert_eq!(m.pop_mail(mb).unwrap().args[0], 0);
        assert_eq!(m.pop_mail(mb).unwrap().args[0], 1);
        assert_eq!(m.pop_mail(mb).unwrap().args[0], 2);
        assert!(m.pop_mail(mb).is_none());
    }

    #[test]
    fn ext_round_trip() {
        let mut m = Memory::new(2);
        m.ext = Some(Box::new(vec![1u32, 2, 3]));
        m.ext_mut::<Vec<u32>>().push(4);
        assert_eq!(m.ext_mut::<Vec<u32>>().len(), 4);
    }

    #[test]
    fn global_ptr_display_and_offset() {
        let gp = GlobalPtr::new(3, 1, 10);
        assert_eq!(format!("{gp}"), "p3:r1+10");
        assert_eq!(gp.offset_by(5).offset, 15);
    }

    #[test]
    fn fetch_add_wraps() {
        let mut m = Memory::new(1);
        let r = m.alloc_region(1);
        m.store(r, 0, u64::MAX);
        assert_eq!(m.fetch_add(r, 0, 2), u64::MAX);
        assert_eq!(m.load(r, 0), 1);
    }
}
