//! The per-processor Split-C context: the API applications program against.

use std::fmt;

use nowlab_am::{AmCluster, AmPort, HandlerId, Mark, NetConfig, Payload};
use nowlab_coll::{ops as coll_ops, CollAccess, CollConfig, CollHandlers, CollState, Selector};
use nowlab_sim::{SimDelta, SimTime};

use crate::layer::Prims;
use crate::memory::{GlobalPtr, MailMsg, MailboxId, Memory, RegionId};

/// A processor's view of the Split-C global address space.
///
/// Handed to the SPMD body by [`crate::SplitC::run`]. Remote operations are
/// Active Messages with LogGP costs; operations on the local processor are
/// free (as direct loads/stores are next to the cost of a message).
pub struct Ctx {
    cluster: AmCluster,
    port: AmPort,
    prims: Prims,
    coll: CollHandlers,
    coll_cfg: CollConfig,
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").field("proc", &self.me()).finish()
    }
}

impl Ctx {
    pub(crate) fn new(
        cluster: AmCluster,
        port: AmPort,
        prims: Prims,
        coll: CollHandlers,
        coll_cfg: CollConfig,
    ) -> Self {
        Ctx {
            cluster,
            port,
            prims,
            coll,
            coll_cfg,
        }
    }

    /// This processor's id (0-based).
    pub fn me(&self) -> usize {
        self.port.proc_id()
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.port.num_procs()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.port.now()
    }

    /// The network configuration of this run.
    pub fn net_config(&self) -> NetConfig {
        self.port.config()
    }

    /// Low-level access to the Active Message port.
    pub fn port(&self) -> &AmPort {
        &self.port
    }

    /// True if this processor's failure detector has confirmed `peer`
    /// dead (always false on a healthy run).
    pub fn peer_dead(&self, peer: usize) -> bool {
        self.port.peer_dead(peer)
    }

    /// Per-processor liveness from this processor's view (`true` =
    /// not confirmed dead; the self entry is always `true`).
    pub fn survivors(&self) -> Vec<bool> {
        self.port.peers_alive()
    }

    /// Number of processors not confirmed dead, self included.
    pub fn alive_count(&self) -> usize {
        self.port.alive_count()
    }

    /// Spends `d` of local compute time (the network is not serviced).
    pub async fn compute(&self, d: SimDelta) {
        self.port.compute(d).await;
    }

    /// Services the network once (drains pending messages).
    pub async fn poll(&self) {
        self.port.poll().await;
    }

    /// Services the network until `cond()` holds.
    pub async fn wait_until(&self, cond: impl Fn() -> bool) {
        self.port.wait_until(cond).await;
    }

    /// Idles until virtual time `deadline` while servicing the network —
    /// models waiting on an overlapped device (disk DMA) rather than
    /// computing (compare [`Ctx::compute`], which does *not* poll).
    pub async fn idle_until(&self, deadline: SimTime) {
        self.port.idle_until(deadline).await;
    }

    /// Marks the start of a named application phase on this processor's
    /// metrics timeline. A no-op when metrics are disabled; never affects
    /// simulation state, so phase-marked runs stay deterministic.
    pub fn phase(&self, name: &str) {
        self.port.phase_marker(name);
    }

    /// Restarts the measured region: zeroes all communication counters and
    /// the stats clock. Call from **one** processor, between barriers.
    pub fn reset_measurement(&self) {
        self.cluster.reset_stats();
        self.port.region_marker(true);
    }

    /// Ends the measured region: freezes runtime and message statistics so
    /// later traffic (result verification) is not counted. Call from
    /// **one** processor, after a barrier.
    pub fn freeze_measurement(&self) {
        self.cluster.freeze_stats();
        self.port.region_marker(false);
    }

    // ------------------------------------------------------------------
    // Local memory
    // ------------------------------------------------------------------

    /// Runs `f` on this processor's [`Memory`].
    pub fn with_mem<R>(&self, f: impl FnOnce(&mut Memory) -> R) -> R {
        self.port.with_state(f)
    }

    /// Allocates a region of `words` locally. SPMD programs allocate in the
    /// same order everywhere, so the id is symmetric.
    pub fn alloc_region(&self, words: usize) -> RegionId {
        self.with_mem(|m| m.alloc_region(words))
    }

    /// Allocates a mailbox locally (symmetric by convention, like regions).
    pub fn alloc_mailbox(&self) -> MailboxId {
        self.with_mem(|m| m.alloc_mailbox())
    }

    /// Reads a word of local memory.
    pub fn load_local(&self, region: RegionId, offset: usize) -> u64 {
        self.with_mem(|m| m.load(region, offset))
    }

    /// Writes a word of local memory.
    pub fn store_local(&self, region: RegionId, offset: usize, value: u64) {
        self.with_mem(|m| m.store(region, offset, value));
    }

    /// Installs this processor's application extension state.
    pub fn set_ext<T: 'static>(&self, ext: T) {
        self.with_mem(|m| m.ext = Some(Box::new(ext)));
    }

    /// Runs `f` on the application extension state.
    ///
    /// # Panics
    ///
    /// Panics if no extension of type `T` is installed.
    pub fn with_ext<T: 'static, R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.with_mem(|m| f(m.ext_mut::<T>()))
    }

    // ------------------------------------------------------------------
    // Global address space operations
    // ------------------------------------------------------------------

    /// Blocking read of one word (request/response round trip for remote
    /// targets).
    pub async fn read(&self, gp: GlobalPtr) -> u64 {
        if gp.proc == self.me() {
            return self.load_local(gp.region, gp.offset);
        }
        let (args, _) = self
            .port
            .request(
                gp.proc,
                self.prims.read,
                [gp.region as u64, gp.offset as u64, 0, 0],
                Payload::None,
                Mark::Read,
            )
            .await;
        args[0]
    }

    /// Pipelined write of one word: returns once the message is injected;
    /// completion is observed by [`Ctx::sync`].
    pub async fn write(&self, gp: GlobalPtr, value: u64) {
        if gp.proc == self.me() {
            self.store_local(gp.region, gp.offset, value);
            return;
        }
        self.port
            .post(
                gp.proc,
                self.prims.write,
                [gp.region as u64, gp.offset as u64, value, 0],
                Payload::None,
                Mark::Write,
            )
            .await;
    }

    /// Atomic fetch-and-add at the owner; returns the previous value.
    pub async fn fetch_add(&self, gp: GlobalPtr, delta: u64) -> u64 {
        if gp.proc == self.me() {
            return self.with_mem(|m| m.fetch_add(gp.region, gp.offset, delta));
        }
        let (args, _) = self
            .port
            .request(
                gp.proc,
                self.prims.fadd,
                [gp.region as u64, gp.offset as u64, delta, 0],
                Payload::None,
                Mark::Rmw,
            )
            .await;
        args[0]
    }

    /// Atomic compare-and-swap at the owner; returns the previous value.
    pub async fn compare_swap(&self, gp: GlobalPtr, expected: u64, new: u64) -> u64 {
        if gp.proc == self.me() {
            return self.with_mem(|m| m.compare_swap(gp.region, gp.offset, expected, new));
        }
        let (args, _) = self
            .port
            .request(
                gp.proc,
                self.prims.cswap,
                [gp.region as u64, gp.offset as u64, expected, new],
                Payload::None,
                Mark::Rmw,
            )
            .await;
        args[0]
    }

    /// Bulk store of `words` at `gp` (one bulk message, pipelined; see
    /// [`Ctx::sync`]).
    pub async fn bulk_put(&self, gp: GlobalPtr, words: Vec<u64>) {
        if gp.proc == self.me() {
            self.with_mem(|m| {
                let dst = m.region_mut(gp.region);
                dst[gp.offset..gp.offset + words.len()].copy_from_slice(&words);
            });
            return;
        }
        self.port
            .post(
                gp.proc,
                self.prims.bulk_put,
                [gp.region as u64, gp.offset as u64, words.len() as u64, 0],
                Payload::from_words(words),
                Mark::Bulk,
            )
            .await;
    }

    /// Bulk *scatter* store: each word of `packed` encodes
    /// `(offset << 32) | value` and deposits `value` (≤ 32 bits) at
    /// `region[offset]` on `dst` — one bulk message carrying many
    /// non-contiguous stores (the bulk radix sort's distribution).
    pub async fn bulk_put_scatter(&self, dst: usize, region: RegionId, packed: Vec<u64>) {
        if dst == self.me() {
            self.with_mem(|m| {
                let r = m.region_mut(region);
                for &w in &packed {
                    r[(w >> 32) as usize] = w & 0xFFFF_FFFF;
                }
            });
            return;
        }
        self.port
            .post(
                dst,
                self.prims.bulk_scatter,
                [region as u64, packed.len() as u64, 0, 0],
                Payload::from_words(packed),
                Mark::Bulk,
            )
            .await;
    }

    /// Bulk store of a synthetic payload: occupies the wire for `bytes` but
    /// deposits nothing (streaming workloads).
    pub async fn bulk_put_synthetic(&self, dst: usize, bytes: u32) {
        if dst == self.me() {
            return;
        }
        self.port
            .post(
                dst,
                self.prims.bulk_put,
                [0, 0, 0, 0],
                Payload::Synthetic(bytes),
                Mark::Bulk,
            )
            .await;
    }

    /// Blocking bulk fetch of `words` starting at `gp`.
    pub async fn bulk_get(&self, gp: GlobalPtr, words: usize) -> Vec<u64> {
        if gp.proc == self.me() {
            return self.with_mem(|m| m.region(gp.region)[gp.offset..gp.offset + words].to_vec());
        }
        let (_, payload) = self
            .port
            .request(
                gp.proc,
                self.prims.bulk_get,
                [gp.region as u64, gp.offset as u64, words as u64, 0],
                Payload::None,
                Mark::Read,
            )
            .await;
        match payload.as_words() {
            Some(w) => w.to_vec(),
            // A request written off against a dead owner completes with
            // the protocol's default (empty) reply: degrade to zeros.
            None if self.port.peer_dead(gp.proc) => vec![0; words],
            None => panic!("bulk_get reply missing payload"),
        }
    }

    /// Waits until every pipelined write/post issued by this processor has
    /// been acknowledged (Split-C `sync()`).
    pub async fn sync(&self) {
        self.port.quiesce().await;
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Dissemination barrier over all processors (`⌈log₂P⌉` rounds of one
    /// message each).
    pub async fn barrier(&self) {
        let p = self.procs();
        let me = self.me();
        let generation = self.with_mem(|m| {
            m.barrier_gen += 1;
            m.barrier_gen
        });
        if p > 1 {
            let rounds = crate::memory::barrier_rounds(p);
            for r in 0..rounds {
                let partner = (me + (1 << r)) % p;
                // The dissemination pattern gives each round exactly one
                // incoming partner; a confirmed-dead partner will never
                // arrive, so waiting on it is waived (degraded barriers
                // synchronize the survivors among themselves).
                let from = (me + p - (1 << r) % p) % p;
                self.port
                    .post(
                        partner,
                        self.prims.barrier,
                        [r as u64, 0, 0, 0],
                        Payload::None,
                        Mark::Barrier,
                    )
                    .await;
                self.port
                    .wait_until(|| {
                        self.with_mem(|m| m.barrier_arrived[r]) >= generation
                            || self.port.peer_dead(from)
                    })
                    .await;
            }
        }
        self.port.note_barrier();
    }

    /// Global sum reduction: every processor contributes `value`, everyone
    /// receives the total.
    pub async fn allreduce_sum(&self, value: u64) -> u64 {
        let p = self.procs();
        if p == 1 {
            return value;
        }
        let me = self.me();
        if me == 0 {
            // Root contributes locally and gathers the rest. Confirmed-dead
            // processors are not waited for: the reduction degrades to the
            // survivors' partial sum.
            self.with_mem(|m| {
                m.reduce_acc = m.reduce_acc.wrapping_add(value);
                m.reduce_count += 1;
            });
            self.port
                .wait_until(|| self.with_mem(|m| m.reduce_count) >= self.port.alive_count() as u64)
                .await;
            let total = self.with_mem(|m| {
                let t = m.reduce_acc;
                m.reduce_acc = 0;
                m.reduce_count = 0;
                m.reduce_result = t;
                m.reduce_result_gen += 1;
                t
            });
            for q in 1..p {
                self.port
                    .post(
                        q,
                        self.prims.reduce_result,
                        [total, 0, 0, 0],
                        Payload::None,
                        Mark::Barrier,
                    )
                    .await;
            }
            total
        } else {
            let gen0 = self.with_mem(|m| m.reduce_result_gen);
            self.port
                .post(
                    0,
                    self.prims.reduce_contrib,
                    [value, 0, 0, 0],
                    Payload::None,
                    Mark::Barrier,
                )
                .await;
            // A dead root can never publish a total; degrade to the local
            // contribution rather than wait forever.
            self.port
                .wait_until(|| {
                    self.with_mem(|m| m.reduce_result_gen) > gen0 || self.port.peer_dead(0)
                })
                .await;
            if self.with_mem(|m| m.reduce_result_gen) > gen0 {
                self.with_mem(|m| m.reduce_result)
            } else {
                value
            }
        }
    }

    /// Binomial-tree broadcast: `root`'s `words` reach every processor in
    /// `⌈log₂P⌉` rounds of bulk messages. A collective — every processor
    /// must call it, and every processor receives the broadcast data.
    ///
    /// Non-root callers' `words` argument is ignored (pass `Vec::new()`).
    /// Consecutive broadcasts must be separated by a [`Ctx::barrier`] (the
    /// scratch slot holds one payload).
    pub async fn broadcast_words(&self, root: usize, words: Vec<u64>) -> Vec<u64> {
        let p = self.procs();
        let me = self.me();
        if p == 1 {
            return words;
        }
        let rank = (me + p - root) % p; // position in the broadcast tree
        let data = if rank == 0 {
            self.with_mem(|m| {
                m.bcast_data = words.clone();
                m.bcast_gen += 1;
                m.bcast_taken += 1; // the root consumes its own broadcast
            });
            words
        } else {
            // Wait for an unconsumed broadcast, not for `bcast_gen` to
            // move past a snapshot: the payload may already have been
            // serviced while this processor sat in the preceding barrier
            // (retransmission delays make that overtaking real), and a
            // snapshot taken now would never be exceeded.
            //
            // This processor's binomial-tree parent is the only one that
            // can deliver the payload; if the detector confirms it dead,
            // the broadcast degrades to an empty payload here rather than
            // waiting forever.
            let parent = {
                let mut high = 1usize;
                while high * 2 <= rank {
                    high *= 2;
                }
                (root + rank - high) % p
            };
            self.port
                .wait_until(|| {
                    self.with_mem(|m| m.bcast_gen > m.bcast_taken) || self.port.peer_dead(parent)
                })
                .await;
            self.with_mem(|m| {
                if m.bcast_gen > m.bcast_taken {
                    m.bcast_taken += 1;
                    m.bcast_data.clone()
                } else {
                    Vec::new()
                }
            })
        };
        // Forward to binomial children: rank + 2^k for every k with
        // 2^k > rank.
        let mut step = 1usize;
        while step <= rank {
            step <<= 1;
        }
        while rank + step < p {
            let child = (root + rank + step) % p;
            self.port
                .post(
                    child,
                    self.prims.bcast,
                    [data.len() as u64, 0, 0, 0],
                    Payload::from_words(data.clone()),
                    Mark::Bulk,
                )
                .await;
            step <<= 1;
        }
        data
    }

    // ------------------------------------------------------------------
    // Model-driven collectives (nowlab-coll)
    // ------------------------------------------------------------------

    /// The variant selector for this run: the analytic LogGP model over
    /// this cluster's configuration, constrained by the run's
    /// [`CollConfig`] (`--coll-algo`).
    pub fn coll_selector(&self) -> Selector {
        Selector::new(self.net_config(), self.procs(), self.coll_cfg)
    }

    /// Model-selected broadcast of `words` from `root` (see
    /// [`nowlab_coll::ops::broadcast`]). `nwords` is the payload length in
    /// words, which every processor must know (non-roots pass an empty
    /// `words` but the selector needs the size to rank variants
    /// identically everywhere).
    pub async fn coll_broadcast(&self, root: usize, words: Vec<u64>, nwords: usize) -> Vec<u64> {
        let algo = self.coll_selector().broadcast(nwords as u64 * 8);
        coll_ops::broadcast(self, algo, root, &words).await
    }

    /// Model-selected global wrapping sum (see
    /// [`nowlab_coll::ops::allreduce_sum`]).
    pub async fn coll_allreduce_sum(&self, value: u64) -> u64 {
        let algo = self.coll_selector().reduce();
        coll_ops::allreduce_sum(self, algo, value).await
    }

    /// Model-selected allgather of this processor's `words` (see
    /// [`nowlab_coll::ops::allgather`]). Block sizes must be symmetric
    /// across processors, or the selectors disagree on the variant.
    pub async fn coll_allgather(&self, words: &[u64]) -> Vec<Vec<u64>> {
        let algo = self.coll_selector().allgather(words.len() as u64 * 8);
        coll_ops::allgather(self, algo, words).await
    }

    /// Model-selected personalized all-to-all (see
    /// [`nowlab_coll::ops::alltoall`]). `nominal_words` is the
    /// per-destination block size the selector ranks by; it must be the
    /// same value on every processor (actual block sizes may vary).
    pub async fn coll_alltoall(&self, blocks: &[Vec<u64>], nominal_words: usize) -> Vec<Vec<u64>> {
        let algo = self.coll_selector().alltoall(nominal_words as u64 * 8);
        coll_ops::alltoall(self, algo, blocks).await
    }

    // ------------------------------------------------------------------
    // Locks (Barnes-style blocking locks with retry)
    // ------------------------------------------------------------------

    /// Acquires a spin lock at `gp` (word must be 0 when free) with a
    /// fixed [`LOCK_RETRY`] backoff. Returns the number of attempts — the
    /// paper's Barnes instrumentation counts failed acquisitions to
    /// diagnose livelock, and under contention this naive spin exhibits
    /// exactly that retry explosion.
    pub async fn lock(&self, gp: GlobalPtr) -> u64 {
        /// Fixed retry period of the naive spin lock (`max == initial`
        /// disables the exponential growth).
        const LOCK_RETRY: SimDelta = SimDelta::from_micros_int(1);
        self.lock_with_backoff(gp, LOCK_RETRY, LOCK_RETRY).await
    }

    /// Acquires a spin lock with exponential backoff: the retry delay
    /// starts at `initial` and doubles up to `max` (set `max == initial`
    /// for the naive fixed-backoff spin). Returns the number of attempts.
    pub async fn lock_with_backoff(&self, gp: GlobalPtr, initial: SimDelta, max: SimDelta) -> u64 {
        let mut attempts = 0u64;
        let mut backoff = initial;
        loop {
            attempts += 1;
            let old = self.compare_swap(gp, 0, 1).await;
            if old == 0 {
                return attempts;
            }
            // Back off while *polling*: a spinning processor still
            // services the network (GAM discipline). The backoff is
            // jittered deterministically per (processor, attempt):
            // identical spinners otherwise phase-lock into a convoy — a
            // limit cycle in which the holder's own messages queue behind
            // the same retries forever (deterministic simulation has none
            // of the clock skew that breaks such convoys in hardware).
            let jitter = {
                let mut h = (self.me() as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(attempts.wrapping_mul(0xD1B5_4A32_D192_ED03));
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 29;
                SimDelta::from_nanos(h % backoff.as_nanos().max(1))
            };
            self.idle_until(self.now() + backoff + jitter).await;
            backoff = (backoff * 2).min(max);
        }
    }

    /// Releases a lock taken by [`Ctx::lock`].
    pub async fn unlock(&self, gp: GlobalPtr) {
        self.write(gp, 0).await;
    }

    // ------------------------------------------------------------------
    // User active messages and mailboxes
    // ------------------------------------------------------------------

    /// One-way user active message delivering `(args, payload)` into
    /// mailbox `mb` at `dst` (acknowledged at the transport level).
    pub async fn send_mail(&self, dst: usize, mb: MailboxId, args: [u64; 3], payload: Payload) {
        if dst == self.me() {
            let me = self.me();
            self.with_mem(|m| {
                m.push_mail(
                    mb,
                    MailMsg {
                        src: me,
                        args,
                        payload,
                    },
                )
            });
            return;
        }
        self.port
            .post(
                dst,
                self.prims.enqueue,
                [mb as u64, args[0], args[1], args[2]],
                payload,
                Mark::User,
            )
            .await;
    }

    /// Pops the oldest message from a local mailbox.
    pub fn try_recv_mail(&self, mb: MailboxId) -> Option<MailMsg> {
        self.with_mem(|m| m.pop_mail(mb))
    }

    /// Number of messages waiting in a local mailbox.
    pub fn mail_len(&self, mb: MailboxId) -> usize {
        self.with_mem(|m| m.mail_len(mb))
    }

    /// Calls a user-registered handler at `dst` and waits for its reply.
    pub async fn am_request(
        &self,
        dst: usize,
        handler: HandlerId,
        args: [u64; 4],
        payload: Payload,
    ) -> ([u64; 4], Payload) {
        self.port
            .request(dst, handler, args, payload, Mark::User)
            .await
    }

    /// Posts a one-way user active message to a registered handler.
    pub async fn am_post(&self, dst: usize, handler: HandlerId, args: [u64; 4], payload: Payload) {
        self.port
            .post(dst, handler, args, payload, Mark::User)
            .await;
    }
}

impl CollAccess for Ctx {
    fn port(&self) -> &AmPort {
        &self.port
    }

    fn handlers(&self) -> CollHandlers {
        self.coll
    }

    fn with_coll<R>(&self, f: impl FnOnce(&mut CollState) -> R) -> R {
        self.port.with_state(|m: &mut Memory| f(&mut m.coll))
    }
}
