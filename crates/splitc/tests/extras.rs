//! Additional Split-C layer tests: scatter bulk stores, lock behavior
//! under contention, idle waits, reductions under load, and measurement
//! windows.

use nowlab_am::{Knobs, NetConfig};
use nowlab_sim::{SimDelta, SimTime};
use nowlab_splitc::{run_spmd, GlobalPtr, SpmdConfig};

#[test]
fn bulk_scatter_deposits_noncontiguous_words() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let r = ctx.alloc_region(64);
        ctx.barrier().await;
        if ctx.me() == 0 {
            // Scatter value v=off*3 at every even offset of proc 1.
            let packed: Vec<u64> = (0..32u64).map(|i| ((2 * i) << 32) | (i * 3)).collect();
            ctx.bulk_put_scatter(1, r, packed).await;
            ctx.sync().await;
        }
        ctx.barrier().await;
        if ctx.me() == 1 {
            ctx.with_mem(|m| {
                let region = m.region(r);
                (0..32).all(|i| region[2 * i] == (i as u64) * 3)
                    && (0..32).all(|i| region[2 * i + 1] == 0)
            }) as u64
        } else {
            1
        }
    });
    assert_eq!(outcome.expect_outputs(), vec![1, 1]);
}

#[test]
fn bulk_scatter_local_fast_path() {
    let outcome = run_spmd(&SpmdConfig::new(1), |ctx| async move {
        let r = ctx.alloc_region(8);
        ctx.bulk_put_scatter(0, r, vec![(3u64 << 32) | 99]).await;
        ctx.load_local(r, 3)
    });
    assert_eq!(outcome.stats.total_sends(), 0);
    assert_eq!(outcome.expect_outputs(), vec![99]);
}

#[test]
fn contended_lock_serializes_and_counts_attempts() {
    let outcome = run_spmd(&SpmdConfig::new(6), |ctx| async move {
        let r = ctx.alloc_region(2);
        ctx.barrier().await;
        let mut attempts = 0;
        for _ in 0..4 {
            attempts += ctx
                .lock_with_backoff(
                    GlobalPtr::new(0, r, 0),
                    SimDelta::from_micros(1.0),
                    SimDelta::from_micros(16.0),
                )
                .await;
            let v = ctx.read(GlobalPtr::new(0, r, 1)).await;
            ctx.compute(SimDelta::from_micros(3.0)).await;
            ctx.write(GlobalPtr::new(0, r, 1), v + 1).await;
            ctx.sync().await;
            ctx.unlock(GlobalPtr::new(0, r, 0)).await;
        }
        ctx.barrier().await;
        let total = ctx.read(GlobalPtr::new(0, r, 1)).await;
        assert_eq!(total, 24, "mutual exclusion violated");
        attempts
    });
    let attempts = outcome.expect_outputs();
    // Everyone needed at least its 4 successful attempts; contention makes
    // some retry.
    assert!(attempts.iter().all(|&a| a >= 4));
    assert!(attempts.iter().sum::<u64>() > 24);
}

#[test]
fn idle_until_overlaps_incoming_work() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let r = ctx.alloc_region(16);
        ctx.barrier().await;
        if ctx.me() == 0 {
            for i in 0..8u64 {
                ctx.write(GlobalPtr::new(1, r, i as usize), i + 1).await;
                ctx.compute(SimDelta::from_micros(20.0)).await;
            }
            ctx.sync().await;
            ctx.barrier().await;
            0
        } else {
            // "Disk wait": by the time the deadline passes, all the
            // writes must have been served.
            ctx.idle_until(SimTime::ZERO + SimDelta::from_millis(1.0))
                .await;
            let served = ctx.with_mem(|m| (0..8).filter(|&i| m.load(r, i) != 0).count());
            ctx.barrier().await;
            served as u64
        }
    });
    assert_eq!(outcome.expect_outputs()[1], 8);
}

#[test]
fn allreduce_under_concurrent_write_traffic() {
    let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
        let r = ctx.alloc_region(64);
        ctx.barrier().await;
        // Interleave reductions with background stores.
        let mut total = 0u64;
        for round in 0..5u64 {
            for i in 0..8usize {
                ctx.write(GlobalPtr::new((ctx.me() + 1) % ctx.procs(), r, i), round)
                    .await;
            }
            total += ctx.allreduce_sum(ctx.me() as u64 + round).await;
        }
        ctx.sync().await;
        ctx.barrier().await;
        total
    });
    let outs = outcome.expect_outputs();
    // Σ_round Σ_p (p + round) = Σ_round (28 + 8·round) = 140 + 8·10 = 220.
    assert!(outs.iter().all(|&t| t == 220), "{outs:?}");
}

#[test]
fn measurement_window_brackets_only_the_marked_region() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let r = ctx.alloc_region(1);
        // Unmeasured warm-up traffic.
        for _ in 0..50 {
            ctx.write(GlobalPtr::new(1 - ctx.me(), r, 0), 1).await;
        }
        ctx.sync().await;
        ctx.barrier().await;
        if ctx.me() == 0 {
            ctx.reset_measurement();
        }
        ctx.barrier().await;
        // Measured region: exactly 10 writes from proc 0.
        if ctx.me() == 0 {
            for _ in 0..10 {
                ctx.write(GlobalPtr::new(1, r, 0), 2).await;
            }
            ctx.sync().await;
        }
        ctx.barrier().await;
        if ctx.me() == 0 {
            ctx.freeze_measurement();
        }
        // Unmeasured cool-down traffic.
        for _ in 0..50 {
            ctx.write(GlobalPtr::new(1 - ctx.me(), r, 0), 3).await;
        }
        ctx.sync().await;
        ctx.barrier().await;
    });
    assert!(outcome.completed);
    // 10 requests + 10 acks + two barriers' traffic; far below the 200
    // unmeasured writes.
    let sends = outcome.stats.total_sends();
    assert!((20..60).contains(&sends), "measured sends = {sends}");
}

#[test]
fn lock_backoff_jitter_desynchronizes_identical_spinners() {
    // A stress version of the convoy scenario: many procs in lockstep all
    // hammer one lock with identical timing. The jittered backoff must let
    // the system finish quickly.
    let net = NetConfig::berkeley_now().with_knobs(Knobs::with_latency(SimDelta::from_micros(2.5)));
    let cfg = SpmdConfig::new(12)
        .with_net(net)
        .with_event_limit(5_000_000);
    let outcome = run_spmd(&cfg, |ctx| async move {
        let r = ctx.alloc_region(8);
        ctx.barrier().await;
        for _ in 0..3 {
            ctx.compute(SimDelta::from_nanos(800)).await;
            ctx.lock(GlobalPtr::new(0, r, 0)).await;
            for k in 1..5 {
                ctx.fetch_add(GlobalPtr::new(0, r, k), 1).await;
            }
            ctx.unlock(GlobalPtr::new(0, r, 0)).await;
        }
        ctx.barrier().await;
        ctx.read(GlobalPtr::new(0, r, 1)).await
    });
    assert!(outcome.completed, "convoy not broken");
    assert_eq!(outcome.expect_outputs()[0], 36);
}

#[test]
fn broadcast_reaches_every_processor_from_any_root() {
    for procs in [2usize, 5, 8, 13] {
        for root in [0usize, procs - 1, procs / 2] {
            let outcome = run_spmd(&SpmdConfig::new(procs), move |ctx| async move {
                ctx.barrier().await;
                let data = if ctx.me() == root {
                    vec![7, 8, 9, root as u64]
                } else {
                    Vec::new()
                };
                let got = ctx.broadcast_words(root, data).await;
                ctx.barrier().await;
                (got == vec![7, 8, 9, root as u64]) as u64
            });
            let oks = outcome.expect_outputs();
            assert!(
                oks.iter().all(|&v| v == 1),
                "procs={procs} root={root}: {oks:?}"
            );
        }
    }
}

#[test]
fn broadcast_uses_logarithmically_many_messages() {
    let count_for = |procs: usize| {
        let outcome = run_spmd(&SpmdConfig::new(procs), move |ctx| async move {
            ctx.barrier().await;
            if ctx.me() == 0 {
                ctx.reset_measurement();
            }
            ctx.barrier().await;
            let data = if ctx.me() == 0 {
                vec![1u64; 16]
            } else {
                Vec::new()
            };
            ctx.broadcast_words(0, data).await;
            ctx.barrier().await;
            if ctx.me() == 0 {
                ctx.freeze_measurement();
            }
        });
        outcome.stats.total_sends()
    };
    // P-1 payload-carrying messages + acks + barrier traffic — but the
    // *critical path* is logarithmic: compare times instead of counts for
    // depth, and counts for linear total.
    let c16 = count_for(16);
    let c32 = count_for(32);
    assert!(
        c32 < 2 * c16 + 16 * 12,
        "total messages stay linear: {c16} -> {c32}"
    );

    let time_for = |procs: usize| {
        let outcome = run_spmd(&SpmdConfig::new(procs), move |ctx| async move {
            ctx.barrier().await;
            let t0 = ctx.now();
            let data = if ctx.me() == 0 {
                vec![1u64; 16]
            } else {
                Vec::new()
            };
            ctx.broadcast_words(0, data).await;
            (ctx.now() - t0).as_micros_f64()
        });
        outcome.expect_outputs().into_iter().fold(0.0f64, f64::max)
    };
    let t8 = time_for(8);
    let t64 = time_for(64);
    assert!(
        t64 < 4.0 * t8,
        "binomial broadcast depth is logarithmic: {t8:.1}us -> {t64:.1}us"
    );
}
