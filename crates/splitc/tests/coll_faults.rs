//! Fault-path contracts for the collectives: a confirmed-dead peer must
//! never hang a collective. Under [`DegradePolicy::Continue`] survivors
//! complete with the victim's data missing (empty blocks, partial sums);
//! under the default [`DegradePolicy::Abort`] the run halts with a
//! structured [`RunAbort`] naming the victim. Crash-recovery outages
//! shorter than the confirmation window must leave results *exact* (the
//! fail-pause node resumes and its traffic replays), with the detector's
//! false-suspicion counter recording the scare.

use nowlab_am::{NetConfig, NodeFault, NodeFaultPlan};
use nowlab_sim::{SimDelta, SimTime};
use nowlab_splitc::{run_spmd, CollAlgo, CollConfig, DegradePolicy, SpmdConfig, SpmdOutcome};

const PROCS: usize = 6;
const VICTIM: usize = 5;

/// Config with `VICTIM` crash-stopped at t=0 and a generous virtual-time
/// backstop: if an escape path regresses into a hang, the limit converts
/// it into a visible `completed == false` for the *survivors* too.
fn crash_stop(policy: CollAlgo, degrade: DegradePolicy) -> SpmdConfig {
    let plan = NodeFaultPlan::none().with_fault(NodeFault::crash(VICTIM, SimTime::ZERO));
    SpmdConfig::new(PROCS)
        .with_net(NetConfig::berkeley_now().with_node_faults(plan))
        .with_degrade(degrade)
        .with_coll(CollConfig::forced(policy))
        .with_time_limit(SimDelta::from_secs(1.0))
}

/// Unwraps the survivors' outputs of a degraded-continue run: the victim
/// never runs (its slot is `None`), every survivor must have finished.
fn survivor_outputs<T>(outcome: SpmdOutcome<T>) -> Vec<T> {
    assert!(
        outcome.abort.is_none(),
        "Continue run aborted: {:?}",
        outcome.abort
    );
    assert!(!outcome.completed, "the victim cannot have completed");
    let mut outs = Vec::new();
    for (i, o) in outcome.outputs.into_iter().enumerate() {
        if i == VICTIM {
            assert!(o.is_none(), "victim p{i} produced output");
        } else {
            outs.push(o.unwrap_or_else(|| panic!("survivor p{i} hung")));
        }
    }
    outs
}

#[test]
fn broadcast_with_crashed_leaf_delivers_full_payload_to_survivors() {
    // Proc 5 is a leaf of the binomial tree rooted at 0 and the tail of
    // the chain, so its death costs the survivors nothing but the wait
    // for confirmation.
    for policy in [CollAlgo::Binomial, CollAlgo::Chain] {
        let cfg = crash_stop(policy, DegradePolicy::Continue);
        let outcome = run_spmd(&cfg, |ctx| async move {
            let data = if ctx.me() == 0 {
                vec![7u64; 96]
            } else {
                Vec::new()
            };
            ctx.coll_broadcast(0, data, 96).await
        });
        let stats = outcome.stats.clone();
        for (i, words) in survivor_outputs(outcome).into_iter().enumerate() {
            assert_eq!(words, vec![7u64; 96], "{policy}: survivor #{i} degraded");
        }
        // Every survivor's detector independently confirms the one death.
        assert_eq!(stats.total_peer_deaths(), (PROCS - 1) as u64, "{policy}");
        assert_eq!(stats.total_false_suspicions(), 0, "{policy}");
        assert!(stats.total_heartbeats() > 0, "{policy}");
    }
}

#[test]
fn reduce_with_crashed_peer_yields_the_survivors_partial_sum() {
    let cfg = crash_stop(CollAlgo::Flat, DegradePolicy::Continue);
    let outcome = run_spmd(&cfg, |ctx| async move {
        ctx.coll_allreduce_sum(ctx.me() as u64 + 1).await
    });
    let partial: u64 = (0..PROCS as u64 + 1).sum::<u64>() - (VICTIM as u64 + 1);
    for (i, sum) in survivor_outputs(outcome).into_iter().enumerate() {
        assert_eq!(sum, partial, "survivor #{i}: wrong partial sum");
    }
}

#[test]
fn gathers_with_crashed_peer_leave_the_victims_block_empty() {
    // The direct exchange is point-to-point, so exactly one block — the
    // victim's — is missing from every survivor's result.
    let cfg = crash_stop(CollAlgo::Direct, DegradePolicy::Continue);
    let outcome = run_spmd(&cfg, |ctx| async move {
        let me = ctx.me();
        let mine = vec![me as u64; 16];
        let ag = ctx.coll_allgather(&mine).await;
        let blocks: Vec<Vec<u64>> = (0..ctx.procs())
            .map(|q| vec![(me * 10 + q) as u64; 8])
            .collect();
        let a2a = ctx.coll_alltoall(&blocks, 8).await;
        (ag, a2a)
    });
    for (i, (ag, a2a)) in survivor_outputs(outcome).into_iter().enumerate() {
        assert_eq!(ag.len(), PROCS);
        assert_eq!(a2a.len(), PROCS);
        for q in 0..PROCS {
            if q == VICTIM {
                assert!(ag[q].is_empty(), "survivor #{i}: ghost allgather block");
                assert!(a2a[q].is_empty(), "survivor #{i}: ghost all-to-all block");
            } else {
                assert_eq!(ag[q], vec![q as u64; 16], "survivor #{i}: allgather[{q}]");
                assert_eq!(
                    a2a[q],
                    vec![(q * 10 + i) as u64; 8],
                    "survivor #{i}: a2a[{q}]"
                );
            }
        }
    }
}

/// Under the default Abort policy every collective family surfaces the
/// death as a structured [`nowlab_splitc::RunAbort`] instead of a hang or
/// a panic, regardless of which variant the selector picked.
#[test]
fn abort_policy_surfaces_a_structured_run_abort_for_every_collective() {
    for kind in 0..4usize {
        let cfg = crash_stop(CollAlgo::Auto, DegradePolicy::Abort);
        let outcome = run_spmd(&cfg, move |ctx| async move {
            match kind {
                0 => {
                    let d = if ctx.me() == 0 {
                        vec![1u64; 64]
                    } else {
                        Vec::new()
                    };
                    ctx.coll_broadcast(0, d, 64).await.len() as u64
                }
                1 => ctx.coll_allreduce_sum(1).await,
                2 => ctx.coll_allgather(&[2u64; 16]).await.len() as u64,
                _ => {
                    let blocks = vec![vec![3u64; 8]; ctx.procs()];
                    ctx.coll_alltoall(&blocks, 8).await.len() as u64
                }
            }
        });
        let abort = outcome
            .abort
            .unwrap_or_else(|| panic!("collective #{kind}: no RunAbort"));
        assert_eq!(abort.peer, VICTIM, "collective #{kind}");
        assert_ne!(abort.observer, VICTIM, "collective #{kind}");
        assert!(abort.at > SimTime::ZERO, "collective #{kind}");
        assert!(!outcome.completed, "collective #{kind}");
    }
}

#[test]
fn crash_recovery_inside_the_suspect_window_keeps_results_exact() {
    // A 600 µs outage: long enough that the detector (suspect after
    // 250 µs) raises suspicions, short enough that the node thaws before
    // the 2 ms confirmation — the fail-pause peer resumes, its traffic
    // replays, and forty allreduce epochs come out exact.
    let plan = NodeFaultPlan::none()
        .with_detector(
            SimDelta::from_micros(100.0),
            SimDelta::from_micros(250.0),
            SimDelta::from_micros(2000.0),
        )
        .with_fault(NodeFault::crash_recovery(
            VICTIM,
            SimTime::ZERO + SimDelta::from_micros(500.0),
            SimDelta::from_micros(600.0),
        ));
    let cfg = SpmdConfig::new(PROCS)
        .with_net(NetConfig::berkeley_now().with_node_faults(plan))
        .with_degrade(DegradePolicy::Continue)
        .with_time_limit(SimDelta::from_secs(1.0));
    let outcome = run_spmd(&cfg, |ctx| async move {
        let mut acc = 0u64;
        for round in 0..40u64 {
            acc = acc.wrapping_add(ctx.coll_allreduce_sum(ctx.me() as u64 + round).await);
        }
        acc
    });
    let stats = outcome.stats.clone();
    let per_round = |round: u64| (0..PROCS as u64).map(|m| m + round).sum::<u64>();
    let expect = (0..40).fold(0u64, |a, r| a.wrapping_add(per_round(r)));
    for (i, acc) in outcome.expect_outputs().into_iter().enumerate() {
        assert_eq!(acc, expect, "p{i}: outage corrupted a reduction");
    }
    assert_eq!(stats.total_peer_deaths(), 0, "no death may be confirmed");
    assert!(
        stats.total_false_suspicions() >= 1,
        "the outage must at least scare the detector (suspicions={}, false={})",
        stats.total_suspicions(),
        stats.total_false_suspicions(),
    );
}

#[test]
fn crash_recovery_past_the_confirmation_window_still_aborts() {
    // A 5 ms outage against the same detector: confirmation (2 ms) wins
    // the race against the thaw, so under Abort the recovery arrives too
    // late — the run is already halted with the death note.
    let plan = NodeFaultPlan::none()
        .with_detector(
            SimDelta::from_micros(100.0),
            SimDelta::from_micros(250.0),
            SimDelta::from_micros(2000.0),
        )
        .with_fault(NodeFault::crash_recovery(
            VICTIM,
            SimTime::ZERO + SimDelta::from_micros(200.0),
            SimDelta::from_micros(5000.0),
        ));
    let cfg = SpmdConfig::new(PROCS)
        .with_net(NetConfig::berkeley_now().with_node_faults(plan))
        .with_time_limit(SimDelta::from_secs(1.0));
    let outcome = run_spmd(&cfg, |ctx| async move {
        let mut acc = 0u64;
        for round in 0..40u64 {
            acc = acc.wrapping_add(ctx.coll_allreduce_sum(ctx.me() as u64 + round).await);
        }
        acc
    });
    let abort = outcome.abort.expect("confirmation must abort the run");
    assert_eq!(abort.peer, VICTIM);
    assert!(!outcome.completed);
}
