//! Integration tests of the Split-C layer: every primitive exercised
//! through real SPMD programs over the LogGP network.

use nowlab_am::{Knobs, NetConfig, Payload, ReplyData};
use nowlab_sim::SimDelta;
use nowlab_splitc::{run_spmd, GlobalPtr, SplitC, SpmdConfig};

#[test]
fn reads_and_writes_cross_processors() {
    let outcome = run_spmd(&SpmdConfig::new(4), |ctx| async move {
        let r = ctx.alloc_region(4);
        ctx.barrier().await;
        // Everyone writes its id into slot `me` of every processor.
        let me = ctx.me() as u64;
        for p in 0..ctx.procs() {
            ctx.write(GlobalPtr::new(p, r, ctx.me()), me * 10).await;
        }
        ctx.sync().await;
        ctx.barrier().await;
        // Everyone reads back all slots from processor (me+1)%P.
        let peer = (ctx.me() + 1) % ctx.procs();
        let mut sum = 0;
        for slot in 0..ctx.procs() {
            sum += ctx.read(GlobalPtr::new(peer, r, slot)).await;
        }
        sum
    });
    let sums = outcome.expect_outputs();
    assert_eq!(sums, vec![60, 60, 60, 60]);
}

#[test]
fn barrier_separates_phases() {
    // Without the barrier, fast processors would read zeros.
    let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
        let r = ctx.alloc_region(1);
        ctx.barrier().await;
        // Stagger the writers wildly.
        ctx.compute(SimDelta::from_micros(ctx.me() as f64 * 50.0))
            .await;
        ctx.write(GlobalPtr::new(ctx.me(), r, 0), 1).await;
        ctx.sync().await;
        ctx.barrier().await;
        let mut total = 0;
        for p in 0..ctx.procs() {
            total += ctx.read(GlobalPtr::new(p, r, 0)).await;
        }
        total
    });
    assert!(outcome.expect_outputs().iter().all(|&t| t == 8));
}

#[test]
fn fetch_add_serializes_at_owner() {
    let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
        let r = ctx.alloc_region(1);
        ctx.barrier().await;
        for _ in 0..10 {
            ctx.fetch_add(GlobalPtr::new(0, r, 0), 1).await;
        }
        ctx.barrier().await;
        ctx.read(GlobalPtr::new(0, r, 0)).await
    });
    assert!(outcome.expect_outputs().iter().all(|&v| v == 80));
}

#[test]
fn bulk_round_trip_preserves_data() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let r = ctx.alloc_region(1024);
        ctx.barrier().await;
        if ctx.me() == 0 {
            let data: Vec<u64> = (0..1024).map(|i| i * 3 + 1).collect();
            ctx.bulk_put(GlobalPtr::new(1, r, 0), data).await;
            ctx.sync().await;
        }
        ctx.barrier().await;
        if ctx.me() == 0 {
            let back = ctx.bulk_get(GlobalPtr::new(1, r, 0), 1024).await;
            back.iter().enumerate().all(|(i, &v)| v == i as u64 * 3 + 1)
        } else {
            true
        }
    });
    assert!(outcome.expect_outputs().iter().all(|&ok| ok));
}

#[test]
fn allreduce_sums_everyones_contribution() {
    let outcome = run_spmd(&SpmdConfig::new(8), |ctx| async move {
        let first = ctx.allreduce_sum(ctx.me() as u64 + 1).await;
        // A second reduction must not see stale state.
        let second = ctx.allreduce_sum(2).await;
        (first, second)
    });
    for (a, b) in outcome.expect_outputs() {
        assert_eq!(a, 36); // 1+2+..+8
        assert_eq!(b, 16);
    }
}

#[test]
fn locks_guarantee_mutual_exclusion() {
    // Each processor increments a non-atomic counter under a lock using a
    // read-modify-write that would race without the lock.
    let outcome = run_spmd(&SpmdConfig::new(4), |ctx| async move {
        let r = ctx.alloc_region(2); // [lock, counter]
        ctx.barrier().await;
        for _ in 0..5 {
            ctx.lock(GlobalPtr::new(0, r, 0)).await;
            let v = ctx.read(GlobalPtr::new(0, r, 1)).await;
            ctx.compute(SimDelta::from_micros(2.0)).await;
            ctx.write(GlobalPtr::new(0, r, 1), v + 1).await;
            ctx.sync().await;
            ctx.unlock(GlobalPtr::new(0, r, 0)).await;
        }
        ctx.barrier().await;
        ctx.read(GlobalPtr::new(0, r, 1)).await
    });
    assert!(outcome.expect_outputs().iter().all(|&v| v == 20));
}

#[test]
fn mailboxes_deliver_in_order_with_payload() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let mb = ctx.alloc_mailbox();
        ctx.barrier().await;
        if ctx.me() == 0 {
            for i in 0..5u64 {
                ctx.send_mail(1, mb, [i, i * i, 0], Payload::from_words(vec![i; 2]))
                    .await;
            }
            ctx.sync().await;
            ctx.barrier().await;
            0
        } else {
            let mut got = Vec::new();
            ctx.wait_until(|| ctx.mail_len(mb) == 5).await;
            while let Some(mail) = ctx.try_recv_mail(mb) {
                assert_eq!(mail.src, 0);
                assert_eq!(mail.args[1], mail.args[0] * mail.args[0]);
                assert_eq!(mail.payload.as_words().unwrap(), &[mail.args[0]; 2]);
                got.push(mail.args[0]);
            }
            ctx.barrier().await;
            got.iter()
                .enumerate()
                .map(|(i, &v)| (v == i as u64) as u64)
                .sum()
        }
    });
    assert_eq!(outcome.expect_outputs()[1], 5);
}

#[test]
fn custom_handlers_see_memory_and_ext() {
    let sc = SplitC::new(&SpmdConfig::new(2));
    let double = sc.register_handler(|mem, msg| {
        let log = mem.ext_mut::<Vec<u64>>();
        log.push(msg.args[0]);
        ReplyData::word(msg.args[0] * 2)
    });
    let outcome = sc.run(|ctx| async move {
        ctx.set_ext(Vec::<u64>::new());
        ctx.barrier().await;
        if ctx.me() == 0 {
            let (args, _) = ctx
                .am_request(1, double, [21, 0, 0, 0], Payload::None)
                .await;
            ctx.barrier().await;
            args[0]
        } else {
            ctx.barrier().await;
            ctx.with_ext(|log: &mut Vec<u64>| log[0])
        }
    });
    let outs = outcome.expect_outputs();
    assert_eq!(outs, vec![42, 21]);
}

#[test]
fn added_overhead_slows_a_chatty_program_linearly() {
    // The core claim of the paper, verified at the layer level: runtime of
    // a message-bound program rises by ~2·m·Δo.
    let run_with = |d_o: f64| {
        let net =
            NetConfig::berkeley_now().with_knobs(Knobs::with_overhead(SimDelta::from_micros(d_o)));
        let outcome = run_spmd(&SpmdConfig::new(2).with_net(net), |ctx| async move {
            let r = ctx.alloc_region(1);
            ctx.barrier().await;
            if ctx.me() == 0 {
                for _ in 0..100 {
                    ctx.read(GlobalPtr::new(1, r, 0)).await;
                }
            }
            ctx.barrier().await;
        });
        assert!(outcome.completed);
        outcome.elapsed.as_micros_f64()
    };
    let base = run_with(0.0);
    let plus10 = run_with(10.0);
    let plus20 = run_with(20.0);
    // Each read costs the issuer one send + one receive => 2Δo per read;
    // the responder's extra time overlaps the issuer's round trip.
    let slope1 = (plus10 - base) / 100.0;
    let slope2 = (plus20 - plus10) / 100.0;
    for slope in [slope1, slope2] {
        assert!(
            (slope - 40.0).abs() < 8.0,
            "expected ~4Δo per blocking read round trip, got {slope} per 10us"
        );
    }
}

#[test]
fn single_processor_degenerates_gracefully() {
    let outcome = run_spmd(&SpmdConfig::new(1), |ctx| async move {
        let r = ctx.alloc_region(4);
        ctx.barrier().await;
        ctx.write(GlobalPtr::new(0, r, 2), 9).await;
        let total = ctx.allreduce_sum(5).await;
        ctx.read(GlobalPtr::new(0, r, 2)).await + total
    });
    // No messages at all on one processor.
    assert_eq!(outcome.stats.total_sends(), 0);
    assert_eq!(outcome.expect_outputs(), vec![14]);
}

#[test]
fn stats_track_reads_writes_and_barriers() {
    let outcome = run_spmd(&SpmdConfig::new(2), |ctx| async move {
        let r = ctx.alloc_region(1);
        ctx.barrier().await;
        if ctx.me() == 0 {
            for _ in 0..10 {
                ctx.read(GlobalPtr::new(1, r, 0)).await;
            }
            for _ in 0..6 {
                ctx.write(GlobalPtr::new(1, r, 0), 1).await;
            }
            ctx.sync().await;
        }
        ctx.barrier().await;
    });
    let stats = &outcome.stats;
    // Reads: 10 requests (p0) + 10 replies (p1) = 20 read-marked sends.
    let reads: u64 = stats.per_proc.iter().map(|c| c.sends_read).sum();
    assert_eq!(reads, 20);
    // Barriers recorded on both processors.
    assert!(stats.per_proc.iter().all(|c| c.barriers == 2));
    assert!(stats.pct_reads() > 0.0 && stats.pct_reads() < 100.0);
}

#[test]
fn time_limit_aborts_cleanly() {
    let cfg = SpmdConfig::new(2).with_time_limit(SimDelta::from_micros(10.0));
    let outcome = run_spmd(&cfg, |ctx| async move {
        ctx.compute(SimDelta::from_micros(5.0 + ctx.me() as f64 * 100.0))
            .await;
        ctx.me()
    });
    assert!(!outcome.completed);
    assert!(outcome.outputs[1].is_none());
    assert!(outcome.elapsed.as_micros_f64() <= 10.0);
}
