//! # nowlab-rng — self-contained deterministic pseudo-randomness
//!
//! The nowlab workspace must build hermetically (no crates.io access), so
//! this crate replaces the external `rand` dependency with the same
//! generator family `rand 0.8` uses for `SmallRng` on 64-bit targets:
//! **xoshiro256++** (Blackman & Vigna), seeded through **SplitMix64** as the
//! xoshiro reference implementation recommends.
//!
//! The API deliberately mirrors the `rand` subset the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] — so call sites read identically. Everything is
//! deterministic: the same seed produces the same stream on every platform,
//! which the ISCA'97 reproduction methodology requires (same seed ⇒ same
//! workload ⇒ comparable virtual times across LogGP parameter vectors).
//!
//! # Examples
//!
//! ```
//! use nowlab_rng::{Rng, RngCore, SeedableRng, SmallRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let d: u64 = a.gen();
//! let idx = a.gen_range(0..10usize);
//! assert!(idx < 10);
//! let _ = d;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// SplitMix64 step: the standard seed-expansion generator (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA'14).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types an [`Rng`] can sample uniformly over their full domain.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High bits of xoshiro output have the best equidistribution.
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] accepts.
pub trait UniformInt: Copy {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, u16, u8);

/// The core generator interface: a source of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + uniform_below(self, hi - lo))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform draw in `[0, bound)` using Lemire's multiply-shift with
/// rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — the default small, fast generator (and what `rand 0.8`
/// uses for `SmallRng` on 64-bit platforms).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator directly from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (a fixed point of xoshiro).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // SplitMix64 never yields four zeros, so the state is valid.
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Mix-based stateless hash (same mix64 as the apps' workload hashing):
/// useful for per-decision determinism where threading a generator through
/// would entangle unrelated streams.
#[inline]
pub fn hash64(x: u64) -> u64 {
    let mut x = x;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ with state {1,2,3,4} (Vigna's test
        // vectors; first three outputs).
        let mut rng = SmallRng::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(10u64..12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!SmallRng::seed_from_u64(0).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn hash64_spreads_and_is_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash64(i)));
        }
        assert_eq!(hash64(0x1234_5678), hash64(0x1234_5678));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = SmallRng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }
}
