//! Analytic LogGP cost models for every collective variant, and the
//! [`Selector`] that picks the cheapest one per call site.
//!
//! Each predictor composes the calibrated parameter vector — send/receive
//! overhead `o`, message gap `g`, wire latency `L`, and per-byte bulk Gap
//! `G` ([`NetConfig`]) — into an estimate of the variant's completion time
//! in microseconds, the same way the paper's §2 micro-model composes
//! `2L + 4o` for a round trip. The models are deliberately first-order
//! (they ignore poll jitter, ack piggybacking, and window stalls); the
//! conformance suite pins their error against simulated time and, more
//! importantly, checks that the *argmin* over variants matches the
//! measured argmin — ranking fidelity is what the selector needs, not
//! absolute accuracy.

use nowlab_am::NetConfig;

use crate::config::{A2aAlgo, BcastAlgo, CollAlgo, CollConfig, GatherAlgo, ReduceAlgo};

/// The LogGP vector in microseconds, extracted once per prediction.
#[derive(Clone, Copy, Debug)]
struct M {
    /// Effective send overhead `o_s + Δo`.
    os: f64,
    /// Effective receive overhead `o_r + Δo`.
    or: f64,
    /// Effective message gap `g + Δg`.
    g: f64,
    /// Effective wire latency `L + ΔL`.
    l: f64,
    /// Effective per-byte bulk gap `G + ΔG` (µs/byte).
    gpb: f64,
    /// Bulk fragmentation grain in bytes.
    frag: f64,
}

impl M {
    fn of(cfg: &NetConfig) -> M {
        M {
            os: cfg.eff_o_send().as_micros_f64(),
            or: cfg.eff_o_recv().as_micros_f64(),
            g: cfg.eff_gap().as_micros_f64(),
            l: cfg.eff_latency().as_micros_f64(),
            gpb: cfg.eff_gap_per_byte().as_micros_f64(),
            frag: f64::from(cfg.frag_bytes),
        }
    }

    /// NIC transmit occupancy for a `bytes`-byte payload: each ≤frag
    /// fragment holds the transmit context for `max(g, G·frag)`.
    fn dma(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let mut left = bytes;
        let mut t = 0.0;
        while left > 0.0 {
            let b = if left > self.frag { self.frag } else { left };
            let frag_t = self.gpb * b;
            t += if frag_t > self.g { frag_t } else { self.g };
            left -= b;
        }
        t
    }

    /// End-to-end time of one message carrying `bytes` of payload:
    /// `o_s + DMA + L + o_r` (short messages skip the DMA term).
    fn msg(&self, bytes: f64) -> f64 {
        self.os + self.dma(bytes) + self.l + self.or
    }

    /// Issue interval between back-to-back sends from one processor:
    /// the larger of host occupancy and NIC occupancy.
    fn interval(&self, bytes: f64) -> f64 {
        let nic = if bytes > 0.0 { self.dma(bytes) } else { self.g };
        if self.os > nic {
            self.os
        } else {
            nic
        }
    }

    /// Receiver-side drain interval for an incast of short or `bytes`-byte
    /// messages: the larger of receive overhead and the wire gap.
    fn drain(&self, bytes: f64) -> f64 {
        let nic = if bytes > 0.0 { self.dma(bytes) } else { self.g };
        if self.or > nic {
            self.or
        } else {
            nic
        }
    }

    /// Host cost of one acknowledgement leg: the receiver's reply send
    /// plus the sender's receipt of it. At the calibrated baseline this
    /// sum happens to equal the wire gap (`o_s + o_r = g = 5.8 µs`), so
    /// the ack traffic of the synchronized algorithms is invisible there
    /// and only enters the predictions once overhead outgrows the gap.
    fn oo(&self) -> f64 {
        self.os + self.or
    }
}

/// `⌈log₂ p⌉` (0 for `p ≤ 1`).
pub(crate) fn ceil_log2(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Predicted completion time of a `bytes`-byte broadcast over `procs`
/// processors, in microseconds.
pub fn bcast_us(cfg: &NetConfig, algo: BcastAlgo, procs: usize, bytes: u64) -> f64 {
    let m = M::of(cfg);
    let p = procs as f64;
    let b = bytes as f64;
    if procs <= 1 {
        return 0.0;
    }
    match algo {
        // The deepest leaf is ⌈log₂P⌉ forward hops from the root. Interior
        // nodes re-issue toward later children while the earlier subtree is
        // already in flight, so only the short-message issue gap — not the
        // full payload occupancy — lands on the critical path per round.
        BcastAlgo::Binomial => {
            let rounds = f64::from(ceil_log2(procs));
            rounds * m.msg(b) + (rounds - 1.0).max(0.0) * m.os.max(m.g)
        }
        // Fill the P−1 hop pipe with one segment, then stream the
        // remaining segments at the per-hop store-and-forward interval.
        // Each relay's acknowledgement send sits between receiving a
        // segment and forwarding it, so every hop carries one extra `o_s`.
        BcastAlgo::Chain => {
            let nseg = (b / m.frag).ceil().max(1.0);
            let seg = b / nseg;
            let step = m.or + m.os + m.dma(seg).max(m.g);
            (p - 1.0) * (m.msg(seg) + m.os) + (nseg - 1.0) * step
        }
        // Root scatters P−1 blocks of B/P, then a ring cycles every block
        // past every processor in P−1 neighbour steps. A step is floored
        // by the host's per-exchange CPU (send + receive of a block and
        // its ack), and once overhead alone outgrows both the gap and the
        // block's NIC occupancy the staggered entry from the scatter
        // never damps, stacking a second ack round onto every step.
        BcastAlgo::ScatterAllgather => {
            let blk = b / p;
            let scatter = (p - 2.0).max(0.0) * m.interval(blk) + m.msg(blk);
            let mut step = (m.msg(blk) + m.os.max(m.g)).max(2.0 * m.oo());
            if m.os > m.g.max(m.dma(blk)) {
                step += 2.0 * m.oo();
            }
            scatter + (p - 1.0) * step
        }
    }
}

/// Predicted completion time of an allreduce-sum over `procs` processors,
/// in microseconds (values are single words; payload cost is nil).
pub fn reduce_us(cfg: &NetConfig, algo: ReduceAlgo, procs: usize) -> f64 {
    let m = M::of(cfg);
    let p = procs as f64;
    if procs <= 1 {
        return 0.0;
    }
    match algo {
        // P−1 contributions drain serially at the root (each receipt also
        // pays its ack send), then P−1 result sends fan back out and the
        // last leaf acknowledges its result.
        ReduceAlgo::Flat => {
            m.msg(0.0) + (p - 1.0) * m.oo().max(m.g) + (p - 1.0) * m.os.max(m.g) + m.l + m.or + m.os
        }
        // ⌈log₂P⌉ combine rounds up the tree, the same tree down; every
        // hop includes the receiver's ack send before it can forward.
        ReduceAlgo::Tree => 2.0 * f64::from(ceil_log2(procs)) * (m.msg(0.0) + m.os),
    }
}

/// Predicted completion time of an allgather of `bytes`-byte per-processor
/// blocks over `procs` processors, in microseconds.
pub fn allgather_us(cfg: &NetConfig, algo: GatherAlgo, procs: usize, bytes: u64) -> f64 {
    let m = M::of(cfg);
    let p = procs as f64;
    let b = bytes as f64;
    if procs <= 1 {
        return 0.0;
    }
    match algo {
        // P−1 synchronized neighbour steps, each a full block send +
        // receive, floored by the host's per-exchange CPU.
        GatherAlgo::Ring => (p - 1.0) * (m.msg(b) + m.os.max(m.g)).max(2.0 * m.oo()),
        // Every processor streams P−1 blocks out and drains P−1 in; the
        // send serialization and the receive incast overlap, and the last
        // message's DMA is already inside that serialization, leaving
        // only its issue/wire/receive tail. When the hosts are the
        // bottleneck the exchange instead degenerates to pure CPU: posts,
        // block receipts, their ack sends — and, once `o_s` exceeds the
        // gap, the ack receipts land inside the window too instead of
        // trailing the last block.
        GatherAlgo::Direct => {
            let tx = (p - 1.0) * m.interval(b);
            let rx = (p - 1.0) * m.drain(b);
            let wire = tx.max(rx) + m.os + m.l + m.or;
            let mut cpu = (p - 1.0) * (2.0 * m.os + m.or);
            if m.os > m.g {
                cpu += (p - 1.0) * m.or;
            }
            wire.max(cpu)
        }
    }
}

/// Predicted completion time of a personalized all-to-all with
/// `bytes`-byte per-destination blocks over `procs` processors, in
/// microseconds.
pub fn alltoall_us(cfg: &NetConfig, algo: A2aAlgo, procs: usize, bytes: u64) -> f64 {
    let m = M::of(cfg);
    let p = procs as f64;
    let b = bytes as f64;
    if procs <= 1 {
        return 0.0;
    }
    match algo {
        // Same shape as the direct allgather, with per-destination data
        // (see [`allgather_us`] for the wire/CPU regimes).
        A2aAlgo::Direct => {
            let tx = (p - 1.0) * m.interval(b);
            let rx = (p - 1.0) * m.drain(b);
            let wire = tx.max(rx) + m.os + m.l + m.or;
            let mut cpu = (p - 1.0) * (2.0 * m.os + m.or);
            if m.os > m.g {
                cpu += (p - 1.0) * m.or;
            }
            wire.max(cpu)
        }
        // P−1 synchronized pairwise exchange steps, floored by the
        // host's per-exchange CPU.
        A2aAlgo::Pairwise => (p - 1.0) * (m.msg(b) + m.os.max(m.g)).max(2.0 * m.oo()),
    }
}

/// Picks a variant per collective call site: the forced variant when the
/// run's [`CollConfig`] names an applicable one, otherwise the argmin of
/// the analytic model over the variants (declaration order of the
/// variant's `ALL` array breaks exact ties, so selection is a pure,
/// deterministic function of the configuration).
#[derive(Clone, Copy, Debug)]
pub struct Selector {
    net: NetConfig,
    procs: usize,
    force: CollAlgo,
}

impl Selector {
    /// A selector for a `procs`-processor cluster on network `net` under
    /// policy `cfg`.
    pub fn new(net: NetConfig, procs: usize, cfg: CollConfig) -> Self {
        Selector {
            net,
            procs,
            force: cfg.algo,
        }
    }

    /// The broadcast variant for a `bytes`-byte payload.
    pub fn broadcast(&self, bytes: u64) -> BcastAlgo {
        match self.force {
            CollAlgo::Binomial => return BcastAlgo::Binomial,
            CollAlgo::Chain => return BcastAlgo::Chain,
            CollAlgo::ScatterAllgather => return BcastAlgo::ScatterAllgather,
            _ => {}
        }
        let mut best = BcastAlgo::ALL[0];
        let mut best_t = bcast_us(&self.net, best, self.procs, bytes);
        for &algo in &BcastAlgo::ALL[1..] {
            let t = bcast_us(&self.net, algo, self.procs, bytes);
            if t < best_t {
                best = algo;
                best_t = t;
            }
        }
        best
    }

    /// The allreduce variant.
    pub fn reduce(&self) -> ReduceAlgo {
        match self.force {
            CollAlgo::Flat => return ReduceAlgo::Flat,
            CollAlgo::Tree => return ReduceAlgo::Tree,
            _ => {}
        }
        let mut best = ReduceAlgo::ALL[0];
        let mut best_t = reduce_us(&self.net, best, self.procs);
        for &algo in &ReduceAlgo::ALL[1..] {
            let t = reduce_us(&self.net, algo, self.procs);
            if t < best_t {
                best = algo;
                best_t = t;
            }
        }
        best
    }

    /// The allgather variant for `bytes`-byte per-processor blocks.
    pub fn allgather(&self, bytes: u64) -> GatherAlgo {
        match self.force {
            CollAlgo::Ring => return GatherAlgo::Ring,
            CollAlgo::Direct => return GatherAlgo::Direct,
            _ => {}
        }
        let mut best = GatherAlgo::ALL[0];
        let mut best_t = allgather_us(&self.net, best, self.procs, bytes);
        for &algo in &GatherAlgo::ALL[1..] {
            let t = allgather_us(&self.net, algo, self.procs, bytes);
            if t < best_t {
                best = algo;
                best_t = t;
            }
        }
        best
    }

    /// The all-to-all variant for `bytes`-byte per-destination blocks.
    pub fn alltoall(&self, bytes: u64) -> A2aAlgo {
        match self.force {
            CollAlgo::Direct => return A2aAlgo::Direct,
            CollAlgo::Pairwise => return A2aAlgo::Pairwise,
            _ => {}
        }
        let mut best = A2aAlgo::ALL[0];
        let mut best_t = alltoall_us(&self.net, best, self.procs, bytes);
        for &algo in &A2aAlgo::ALL[1..] {
            let t = alltoall_us(&self.net, algo, self.procs, bytes);
            if t < best_t {
                best = algo;
                best_t = t;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_am::Knobs;
    use nowlab_sim::SimDelta;

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn forced_algo_overrides_the_model() {
        let sel = Selector::new(
            NetConfig::berkeley_now(),
            8,
            CollConfig::forced(CollAlgo::Chain),
        );
        assert_eq!(sel.broadcast(8), BcastAlgo::Chain);
        assert_eq!(sel.broadcast(1 << 20), BcastAlgo::Chain);
        // Chain names no reduce variant: reduce selection stays free.
        let _ = sel.reduce();
    }

    #[test]
    fn high_overhead_favours_logarithmic_trees() {
        // At Δo = 50µs per message end, message count dominates: the
        // binomial tree must beat the P−1-hop chain for small payloads.
        let cfg =
            NetConfig::berkeley_now().with_knobs(Knobs::with_overhead(SimDelta::from_micros(50.0)));
        let sel = Selector::new(cfg, 16, CollConfig::default());
        assert_eq!(sel.broadcast(64), BcastAlgo::Binomial);
        assert_eq!(sel.reduce(), ReduceAlgo::Tree);
    }

    #[test]
    fn predictions_scale_with_size_and_procs() {
        let cfg = NetConfig::berkeley_now();
        for algo in BcastAlgo::ALL {
            assert!(bcast_us(&cfg, algo, 8, 64_000) > bcast_us(&cfg, algo, 8, 64));
            assert!(bcast_us(&cfg, algo, 16, 64) > bcast_us(&cfg, algo, 2, 64));
            assert_eq!(bcast_us(&cfg, algo, 1, 64), 0.0);
        }
        for algo in GatherAlgo::ALL {
            assert!(allgather_us(&cfg, algo, 8, 4096) > allgather_us(&cfg, algo, 8, 32));
        }
        for algo in A2aAlgo::ALL {
            assert!(alltoall_us(&cfg, algo, 8, 4096) > alltoall_us(&cfg, algo, 8, 32));
        }
        for algo in ReduceAlgo::ALL {
            assert!(reduce_us(&cfg, algo, 16) > reduce_us(&cfg, algo, 2));
        }
    }
}
