//! Per-processor collective state and its Active Message handlers.
//!
//! Collectives coordinate without a rendezvous: each call site increments a
//! per-family *epoch* counter on entry, and every message of that call
//! carries the epoch, so data arriving *before* the local task reaches the
//! matching call parks in an epoch-keyed map instead of being mis-matched
//! (SPMD programs issue collectives in the same order on every processor,
//! so counters align without negotiation). All maps are `BTreeMap`s —
//! iteration order is part of the determinism contract.

use std::any::Any;
use std::collections::BTreeMap;

use nowlab_am::{AmCluster, HandlerId, ReplyData};

/// Index of the broadcast epoch family in [`CollState::epochs`].
pub(crate) const FAM_BCAST: usize = 0;
/// Index of the reduce epoch family.
pub(crate) const FAM_REDUCE: usize = 1;
/// Index of the allgather epoch family.
pub(crate) const FAM_GATHER: usize = 2;
/// Index of the all-to-all epoch family.
pub(crate) const FAM_A2A: usize = 3;

/// Broadcast segment index used to poison a pipelined chain downstream of
/// a confirmed-dead processor (the successor of the gap completes degraded
/// and forwards the poison instead of hanging).
pub(crate) const POISON_SEG: u64 = u64::MAX;

/// The collectives layer's per-processor state.
///
/// Embed one of these in the processor's user state and hand
/// [`CollHandlers::register`] a projection to it. The maps buffer
/// in-flight collective data keyed by epoch; entries are consumed by the
/// matching call and never outlive it on the healthy path.
#[derive(Debug, Default)]
pub struct CollState {
    /// Next epoch per operation family (caller side).
    pub(crate) epochs: [u64; 4],
    /// Broadcast payload segments: `(epoch, segment) → words`.
    pub(crate) bcast: BTreeMap<(u64, u64), Vec<u64>>,
    /// Segment count per broadcast epoch, learned from the first arrival.
    pub(crate) bcast_meta: BTreeMap<u64, u64>,
    /// Tree-reduce partial sums: `(epoch, sender) → partial`.
    pub(crate) contrib: BTreeMap<(u64, u64), u64>,
    /// Flat-reduce accumulator at the root: `epoch → (sum, count)`.
    pub(crate) flat: BTreeMap<u64, (u64, u64)>,
    /// Reduce results on their way down: `epoch → total`.
    pub(crate) result: BTreeMap<u64, u64>,
    /// Allgather blocks: `(epoch, origin) → words`.
    pub(crate) blocks: BTreeMap<(u64, u64), Vec<u64>>,
    /// All-to-all blocks: `(epoch, source) → words`.
    pub(crate) exch: BTreeMap<(u64, u64), Vec<u64>>,
}

impl CollState {
    /// Claims the next epoch of family `fam` (call-site entry).
    pub(crate) fn next_epoch(&mut self, fam: usize) -> u64 {
        let e = self.epochs[fam];
        self.epochs[fam] += 1;
        e
    }

    /// Drops any residue a degraded (fault-path) collective left behind
    /// for `epoch` in an origin-keyed map.
    pub(crate) fn sweep(map: &mut BTreeMap<(u64, u64), Vec<u64>>, epoch: u64) {
        let stale: Vec<(u64, u64)> = map
            .range((epoch, 0)..=(epoch, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            map.remove(&k);
        }
    }
}

/// The handler ids of the collectives layer, registered once per cluster.
#[derive(Clone, Copy, Debug)]
pub struct CollHandlers {
    /// Broadcast segment delivery (`args = [epoch, segment, nseg, _]`).
    pub(crate) bcast: HandlerId,
    /// Tree-reduce partial delivery (`args = [epoch, sender, partial, _]`).
    pub(crate) contrib: HandlerId,
    /// Flat-reduce contribution at the root (`args = [epoch, value, _, _]`).
    pub(crate) flat: HandlerId,
    /// Reduce result delivery (`args = [epoch, total, _, _]`).
    pub(crate) result: HandlerId,
    /// Allgather block delivery (`args = [epoch, origin, _, _]`).
    pub(crate) block: HandlerId,
    /// All-to-all block delivery (`args = [epoch, source, _, _]`).
    pub(crate) exch: HandlerId,
}

impl CollHandlers {
    /// Registers the collective handlers on `cluster`.
    ///
    /// `extract` projects the [`CollState`] out of whatever user state the
    /// host installed (handlers receive `&mut dyn Any`); it is cloned into
    /// each handler. Call this exactly once per cluster, before any
    /// collective runs.
    pub fn register<F>(cluster: &AmCluster, extract: F) -> Self
    where
        F: Fn(&mut dyn Any) -> &mut CollState + Clone + 'static,
    {
        let ex = extract.clone();
        let bcast = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            let words = ctx
                .msg
                .payload
                .as_words()
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
            let (epoch, seg, nseg) = (ctx.msg.args[0], ctx.msg.args[1], ctx.msg.args[2]);
            st.bcast_meta.entry(epoch).or_insert(nseg);
            st.bcast.insert((epoch, seg), words);
            ReplyData::ack()
        });
        let ex = extract.clone();
        let contrib = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            st.contrib
                .insert((ctx.msg.args[0], ctx.msg.args[1]), ctx.msg.args[2]);
            ReplyData::ack()
        });
        let ex = extract.clone();
        let flat = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            let acc = st.flat.entry(ctx.msg.args[0]).or_insert((0, 0));
            acc.0 = acc.0.wrapping_add(ctx.msg.args[1]);
            acc.1 += 1;
            ReplyData::ack()
        });
        let ex = extract.clone();
        let result = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            st.result.insert(ctx.msg.args[0], ctx.msg.args[1]);
            ReplyData::ack()
        });
        let ex = extract.clone();
        let block = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            let words = ctx
                .msg
                .payload
                .as_words()
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
            st.blocks.insert((ctx.msg.args[0], ctx.msg.args[1]), words);
            ReplyData::ack()
        });
        let ex = extract;
        let exch = cluster.register_handler(move |ctx| {
            let st = ex(ctx.state);
            let words = ctx
                .msg
                .payload
                .as_words()
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
            st.exch.insert((ctx.msg.args[0], ctx.msg.args[1]), words);
            ReplyData::ack()
        });
        CollHandlers {
            bcast,
            contrib,
            flat,
            result,
            block,
            exch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_per_family_and_monotonic() {
        let mut s = CollState::default();
        assert_eq!(s.next_epoch(FAM_BCAST), 0);
        assert_eq!(s.next_epoch(FAM_BCAST), 1);
        assert_eq!(s.next_epoch(FAM_REDUCE), 0);
        assert_eq!(s.next_epoch(FAM_GATHER), 0);
        assert_eq!(s.next_epoch(FAM_A2A), 0);
        assert_eq!(s.next_epoch(FAM_BCAST), 2);
    }

    #[test]
    fn sweep_removes_only_the_given_epoch() {
        let mut map = BTreeMap::new();
        map.insert((3, 0), vec![1]);
        map.insert((3, POISON_SEG), vec![]);
        map.insert((4, 1), vec![2]);
        CollState::sweep(&mut map, 3);
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(&(4, 1)));
    }
}
