//! # nowlab-coll — model-driven collective operations over Active Messages
//!
//! The ISCA 1997 sensitivity study ran Split-C programs whose global phases
//! — histogram merges, splitter exchanges, convergence tests — were
//! hand-rolled from point-to-point Active Messages. This crate factors
//! those phases into four proper collectives, each with two or three
//! classic algorithm variants whose LogGP cost differs in *shape*:
//!
//! | collective | variants |
//! |------------|----------|
//! | broadcast  | binomial tree, pipelined chain, scatter + ring allgather |
//! | reduce     | flat (root incast), binomial tree |
//! | allgather  | ring, direct exchange |
//! | all-to-all | direct exchange, pairwise synchronized |
//!
//! Because the network is a calibrated LogGP machine ([`NetConfig`]), an
//! **analytic cost model** ([`model`]) predicts each variant's completion
//! time from the parameter vector `(L, o, g, G)`, the processor count, and
//! the message size — and a [`Selector`] picks the cheapest variant per
//! call site. The paper's knobs move the crossover points: high overhead
//! favours the binomial tree's `O(log P)` message count, while scarce
//! bandwidth favours the chain's pipelining of large payloads. The
//! conformance suite pins the model against simulated time so the selector
//! provably picks the measured-cheapest variant at the calibration points.
//!
//! ## Determinism and fault discipline
//!
//! All per-processor state lives in `BTreeMap`s keyed by a per-family
//! *epoch* (SPMD programs call collectives in the same order everywhere,
//! so epochs align without negotiation); variant choice is a pure function
//! of configuration, with declaration order as the tie-break. Every
//! blocking wait carries a survivor escape: when a peer is confirmed dead
//! the operation completes degraded (missing blocks empty, partial sums)
//! instead of hanging — so `DegradePolicy::Continue` applications keep
//! making progress, and `Abort` runs halt through the cluster's death
//! note rather than a deadlock.
//!
//! # Examples
//!
//! ```
//! use nowlab_am::NetConfig;
//! use nowlab_coll::harness::{measure, OpSpec};
//! use nowlab_coll::{BcastAlgo, CollConfig, Selector};
//!
//! // Measure a binomial broadcast of 256 words across 8 processors...
//! let m = measure(OpSpec::Broadcast(BcastAlgo::Binomial, 256), 8, NetConfig::berkeley_now());
//! assert!(m.elapsed.as_micros_f64() > 0.0);
//! // ...and ask the selector what it would have picked for that size.
//! let sel = Selector::new(NetConfig::berkeley_now(), 8, CollConfig::default());
//! let _chosen = sel.broadcast(256 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod harness;
pub mod model;
pub mod ops;
mod state;

use nowlab_am::AmPort;

pub use config::{A2aAlgo, BcastAlgo, CollAlgo, CollConfig, GatherAlgo, ReduceAlgo};
pub use model::Selector;
pub use state::{CollHandlers, CollState};

/// What the collective algorithms need from their host: the processor's
/// [`AmPort`], the registered [`CollHandlers`], and access to the
/// [`CollState`] embedded somewhere in the processor's user state.
///
/// The Split-C runtime implements this by projecting the `CollState` field
/// out of its per-processor memory; the conformance harness implements it
/// with `CollState` as the entire user state.
pub trait CollAccess {
    /// This processor's Active Message port.
    fn port(&self) -> &AmPort;

    /// The handler ids registered via [`CollHandlers::register`].
    fn handlers(&self) -> CollHandlers;

    /// Runs `f` on this processor's collective state.
    fn with_coll<R>(&self, f: impl FnOnce(&mut CollState) -> R) -> R;
}
