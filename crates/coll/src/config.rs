//! Collective configuration: the per-run algorithm override and the
//! concrete per-collective variant enums.

use std::fmt;
use std::str::FromStr;

/// Per-run collective-algorithm policy (the `--coll-algo` flag).
///
/// `Auto` lets the [`crate::Selector`] pick the model-cheapest variant per
/// call site; a concrete name forces that variant wherever it applies and
/// falls back to `Auto` for collectives it does not name (forcing `chain`
/// constrains broadcasts but leaves reduce selection free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollAlgo {
    /// Model-driven selection (the default).
    #[default]
    Auto,
    /// Binomial-tree broadcast.
    Binomial,
    /// Pipelined-chain broadcast.
    Chain,
    /// Scatter-then-ring-allgather broadcast.
    ScatterAllgather,
    /// Flat (root-incast) reduce.
    Flat,
    /// Binomial-tree reduce.
    Tree,
    /// Ring allgather.
    Ring,
    /// Direct-exchange allgather or all-to-all.
    Direct,
    /// Pairwise synchronized all-to-all.
    Pairwise,
}

impl FromStr for CollAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(CollAlgo::Auto),
            "binomial" => Ok(CollAlgo::Binomial),
            "chain" => Ok(CollAlgo::Chain),
            "scatter-allgather" | "sag" => Ok(CollAlgo::ScatterAllgather),
            "flat" => Ok(CollAlgo::Flat),
            "tree" => Ok(CollAlgo::Tree),
            "ring" => Ok(CollAlgo::Ring),
            "direct" => Ok(CollAlgo::Direct),
            "pairwise" => Ok(CollAlgo::Pairwise),
            other => Err(format!(
                "unknown collective algorithm '{other}' (expected auto, binomial, chain, \
                 scatter-allgather, flat, tree, ring, direct, or pairwise)"
            )),
        }
    }
}

impl fmt::Display for CollAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollAlgo::Auto => "auto",
            CollAlgo::Binomial => "binomial",
            CollAlgo::Chain => "chain",
            CollAlgo::ScatterAllgather => "scatter-allgather",
            CollAlgo::Flat => "flat",
            CollAlgo::Tree => "tree",
            CollAlgo::Ring => "ring",
            CollAlgo::Direct => "direct",
            CollAlgo::Pairwise => "pairwise",
        };
        f.write_str(name)
    }
}

/// Collective-layer configuration carried by a run specification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollConfig {
    /// The algorithm policy (see [`CollAlgo`]).
    pub algo: CollAlgo,
}

impl CollConfig {
    /// A configuration forcing `algo` wherever it applies.
    pub fn forced(algo: CollAlgo) -> Self {
        CollConfig { algo }
    }
}

/// Broadcast algorithm variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BcastAlgo {
    /// Binomial tree: `⌈log₂ P⌉` rounds of whole-payload forwards — the
    /// fewest messages on any critical path, best when overhead dominates.
    Binomial,
    /// Pipelined chain: the payload streams through `P−1` hops in
    /// fragment-sized segments — best for large payloads when bandwidth
    /// (not overhead) is the constraint.
    Chain,
    /// Scatter + ring allgather: `1/P`-sized blocks scattered then cycled —
    /// van de Geijn's bandwidth-optimal large-message broadcast.
    ScatterAllgather,
}

impl BcastAlgo {
    /// Every variant, in deterministic tie-break order.
    pub const ALL: [BcastAlgo; 3] = [
        BcastAlgo::Binomial,
        BcastAlgo::Chain,
        BcastAlgo::ScatterAllgather,
    ];
}

/// Reduce (allreduce-sum) algorithm variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReduceAlgo {
    /// Flat: every processor posts its value to processor 0, which fans the
    /// total back out — `O(P)` incast, but only two hops of latency.
    Flat,
    /// Binomial tree: `⌈log₂ P⌉` combine rounds up, the same tree down.
    Tree,
}

impl ReduceAlgo {
    /// Every variant, in deterministic tie-break order.
    pub const ALL: [ReduceAlgo; 2] = [ReduceAlgo::Flat, ReduceAlgo::Tree];
}

/// Allgather algorithm variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GatherAlgo {
    /// Ring: `P−1` neighbour forwards; each processor sends each block
    /// once, so bandwidth use is balanced across all links.
    Ring,
    /// Direct: every processor posts its block to every other — shortest
    /// critical path, but an incast at every receiver.
    Direct,
}

impl GatherAlgo {
    /// Every variant, in deterministic tie-break order.
    pub const ALL: [GatherAlgo; 2] = [GatherAlgo::Ring, GatherAlgo::Direct];
}

/// All-to-all algorithm variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum A2aAlgo {
    /// Direct: post all `P−1` personalized blocks in staggered order, then
    /// collect — maximal pipelining, window-limited.
    Direct,
    /// Pairwise: `P−1` synchronized exchange steps with partner
    /// `(me ± s) mod P` — bounded buffering, incast-free.
    Pairwise,
}

impl A2aAlgo {
    /// Every variant, in deterministic tie-break order.
    pub const ALL: [A2aAlgo; 2] = [A2aAlgo::Direct, A2aAlgo::Pairwise];
}

impl fmt::Display for BcastAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BcastAlgo::Binomial => "binomial",
            BcastAlgo::Chain => "chain",
            BcastAlgo::ScatterAllgather => "scatter-allgather",
        };
        f.write_str(name)
    }
}

impl fmt::Display for ReduceAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReduceAlgo::Flat => "flat",
            ReduceAlgo::Tree => "tree",
        };
        f.write_str(name)
    }
}

impl fmt::Display for GatherAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GatherAlgo::Ring => "ring",
            GatherAlgo::Direct => "direct",
        };
        f.write_str(name)
    }
}

impl fmt::Display for A2aAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            A2aAlgo::Direct => "direct",
            A2aAlgo::Pairwise => "pairwise",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_round_trips_through_strings() {
        for algo in [
            CollAlgo::Auto,
            CollAlgo::Binomial,
            CollAlgo::Chain,
            CollAlgo::ScatterAllgather,
            CollAlgo::Flat,
            CollAlgo::Tree,
            CollAlgo::Ring,
            CollAlgo::Direct,
            CollAlgo::Pairwise,
        ] {
            assert_eq!(algo.to_string().parse::<CollAlgo>(), Ok(algo));
        }
        assert_eq!("sag".parse::<CollAlgo>(), Ok(CollAlgo::ScatterAllgather));
        assert!("bogus".parse::<CollAlgo>().is_err());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(CollConfig::default().algo, CollAlgo::Auto);
    }
}
