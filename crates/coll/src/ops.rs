//! The collective algorithms.
//!
//! Every operation is an async function generic over [`CollAccess`]; all
//! processors of the SPMD program must call the same collectives in the
//! same order (the epoch discipline of [`crate::CollState`] relies on it).
//! Handlers only deposit data — all forwarding happens in the calling
//! task after its own wait completes, because Active Message handlers
//! cannot themselves send requests.
//!
//! ## Fault behaviour
//!
//! Every wait carries a survivor escape (`… || peer_dead(partner)`), and
//! algorithms with downstream dependents forward *something* even when
//! degraded — an empty payload down a binomial subtree, a poison segment
//! down a chain — so that no surviving processor ever blocks on a victim
//! transitively. Under `DegradePolicy::Continue` a collective involving a
//! confirmed-dead peer completes with that peer's data missing (empty
//! blocks, partial sums); under `Abort` the cluster's death note halts
//! the run before the degraded values matter.

use nowlab_am::{CollKind, Mark, Payload};

use crate::state::{CollState, FAM_A2A, FAM_BCAST, FAM_GATHER, FAM_REDUCE, POISON_SEG};
use crate::{A2aAlgo, BcastAlgo, CollAccess, GatherAlgo, ReduceAlgo};

/// Largest power of two `≤ r` (`r ≥ 1`).
fn high_bit(r: usize) -> usize {
    1 << (usize::BITS - 1 - r.leading_zeros())
}

/// Smallest power of two `> r`.
fn next_pow_above(r: usize) -> usize {
    if r == 0 {
        1
    } else {
        high_bit(r) << 1
    }
}

/// Broadcasts `words` from `root` to every processor; returns the payload
/// (the root's own copy at the root). Non-roots may pass an empty slice.
/// If an upstream processor is confirmed dead the result degrades to the
/// segments that made it through (possibly empty) instead of hanging.
pub async fn broadcast<C: CollAccess>(
    c: &C,
    algo: BcastAlgo,
    root: usize,
    words: &[u64],
) -> Vec<u64> {
    let port = c.port();
    port.note_coll(CollKind::Broadcast);
    let epoch = c.with_coll(|s| s.next_epoch(FAM_BCAST));
    let p = port.num_procs();
    if p == 1 {
        return words.to_vec();
    }
    let out = match algo {
        BcastAlgo::Binomial => bcast_binomial(c, epoch, root, words).await,
        BcastAlgo::Chain => bcast_chain(c, epoch, root, words).await,
        BcastAlgo::ScatterAllgather => bcast_sag(c, epoch, root, words).await,
    };
    c.with_coll(|s| {
        CollState::sweep(&mut s.bcast, epoch);
        s.bcast_meta.remove(&epoch);
    });
    out
}

async fn bcast_binomial<C: CollAccess>(c: &C, epoch: u64, root: usize, words: &[u64]) -> Vec<u64> {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    let rank = (port.proc_id() + p - root) % p;
    let data = if rank == 0 {
        words.to_vec()
    } else {
        let parent = (root + rank - high_bit(rank)) % p;
        port.wait_until(|| {
            c.with_coll(|s| s.bcast.contains_key(&(epoch, 0))) || port.peer_dead(parent)
        })
        .await;
        c.with_coll(|s| s.bcast.remove(&(epoch, 0)))
            .unwrap_or_default()
    };
    // Forward even a degraded (empty) payload: the subtree below a dead
    // branch must terminate, not inherit the wait.
    let mut step = next_pow_above(rank);
    while rank + step < p {
        let child = (root + rank + step) % p;
        port.post(
            child,
            h.bcast,
            [epoch, 0, 1, 0],
            Payload::from_words(data.clone()),
            Mark::Bulk,
        )
        .await;
        step <<= 1;
    }
    data
}

async fn bcast_chain<C: CollAccess>(c: &C, epoch: u64, root: usize, words: &[u64]) -> Vec<u64> {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    let me = port.proc_id();
    let rank = (me + p - root) % p;
    let succ = if rank + 1 < p {
        Some((me + 1) % p)
    } else {
        None
    };
    let seg_words = (port.config().frag_bytes as usize / 8).max(1);
    if rank == 0 {
        if let Some(succ) = succ {
            if words.is_empty() {
                port.post(succ, h.bcast, [epoch, 0, 1, 0], Payload::None, Mark::Bulk)
                    .await;
            } else {
                let nseg = words.len().div_ceil(seg_words) as u64;
                for (k, seg) in words.chunks(seg_words).enumerate() {
                    port.post(
                        succ,
                        h.bcast,
                        [epoch, k as u64, nseg, 0],
                        Payload::from_words(seg.to_vec()),
                        Mark::Bulk,
                    )
                    .await;
                }
            }
        }
        return words.to_vec();
    }
    let pred = (me + p - 1) % p;
    let mut out: Vec<u64> = Vec::new();
    port.wait_until(|| c.with_coll(|s| s.bcast_meta.contains_key(&epoch)) || port.peer_dead(pred))
        .await;
    // nseg = 0 marks the poison a degraded predecessor forwarded.
    let nseg = c
        .with_coll(|s| s.bcast_meta.get(&epoch).copied())
        .unwrap_or(0);
    let mut degraded = nseg == 0;
    let mut k = 0;
    while !degraded && k < nseg {
        port.wait_until(|| {
            c.with_coll(|s| {
                s.bcast.contains_key(&(epoch, k)) || s.bcast.contains_key(&(epoch, POISON_SEG))
            }) || port.peer_dead(pred)
        })
        .await;
        match c.with_coll(|s| s.bcast.remove(&(epoch, k))) {
            Some(seg) => {
                if let Some(succ) = succ {
                    port.post(
                        succ,
                        h.bcast,
                        [epoch, k, nseg, 0],
                        Payload::from_words(seg.clone()),
                        Mark::Bulk,
                    )
                    .await;
                }
                out.extend_from_slice(&seg);
                k += 1;
            }
            None => degraded = true,
        }
    }
    if degraded {
        // Tell the rest of the chain the stream is dead; they complete
        // degraded instead of waiting on us (we are alive — our silence
        // would never trip their failure detectors).
        if let Some(succ) = succ {
            port.post(
                succ,
                h.bcast,
                [epoch, POISON_SEG, 0, 0],
                Payload::None,
                Mark::User,
            )
            .await;
        }
    }
    out
}

async fn bcast_sag<C: CollAccess>(c: &C, epoch: u64, root: usize, words: &[u64]) -> Vec<u64> {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    let me = port.proc_id();
    let rank = (me + p - root) % p;
    let len = words.len();
    // Scatter: block r (the rank-r slice of `words`) goes to the rank-r
    // processor.
    let mut blocks: Vec<Vec<u64>> = vec![Vec::new(); p];
    if rank == 0 {
        for r in 1..p {
            let dst = (root + r) % p;
            let seg = words[r * len / p..(r + 1) * len / p].to_vec();
            port.post(
                dst,
                h.bcast,
                [epoch, r as u64, 0, 0],
                Payload::from_words(seg),
                Mark::Bulk,
            )
            .await;
        }
        blocks[0] = words[..len / p].to_vec();
    } else {
        port.wait_until(|| {
            c.with_coll(|s| s.bcast.contains_key(&(epoch, rank as u64))) || port.peer_dead(root)
        })
        .await;
        blocks[rank] = c
            .with_coll(|s| s.bcast.remove(&(epoch, rank as u64)))
            .unwrap_or_default();
    }
    // Ring allgather of the blocks: at step s, forward block (rank − s)
    // and collect block (rank − s − 1), both mod P.
    let succ = (me + 1) % p;
    let pred = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_idx = (rank + p - s) % p;
        let recv_idx = (rank + p - s - 1) % p;
        port.post(
            succ,
            h.bcast,
            [epoch, send_idx as u64, 0, 0],
            Payload::from_words(blocks[send_idx].clone()),
            Mark::Bulk,
        )
        .await;
        port.wait_until(|| {
            c.with_coll(|s| s.bcast.contains_key(&(epoch, recv_idx as u64))) || port.peer_dead(pred)
        })
        .await;
        blocks[recv_idx] = c
            .with_coll(|s| s.bcast.remove(&(epoch, recv_idx as u64)))
            .unwrap_or_default();
    }
    let mut out = Vec::with_capacity(len);
    for b in &blocks {
        out.extend_from_slice(b);
    }
    out
}

/// Global wrapping sum of one `u64` per processor; every survivor returns
/// the total. With a confirmed-dead peer the total degrades to the
/// contributions that reached the combining processors.
pub async fn allreduce_sum<C: CollAccess>(c: &C, algo: ReduceAlgo, value: u64) -> u64 {
    let port = c.port();
    port.note_coll(CollKind::Reduce);
    let epoch = c.with_coll(|s| s.next_epoch(FAM_REDUCE));
    let p = port.num_procs();
    if p == 1 {
        return value;
    }
    let total = match algo {
        ReduceAlgo::Flat => reduce_flat(c, epoch, value).await,
        ReduceAlgo::Tree => reduce_tree(c, epoch, value).await,
    };
    c.with_coll(|s| {
        s.flat.remove(&epoch);
        s.result.remove(&epoch);
        let stale: Vec<(u64, u64)> = s
            .contrib
            .range((epoch, 0)..=(epoch, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            s.contrib.remove(&k);
        }
    });
    total
}

async fn reduce_flat<C: CollAccess>(c: &C, epoch: u64, value: u64) -> u64 {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    if port.proc_id() == 0 {
        c.with_coll(|s| {
            let acc = s.flat.entry(epoch).or_insert((0, 0));
            acc.0 = acc.0.wrapping_add(value);
            acc.1 += 1;
        });
        // One contribution per processor the detector still counts alive;
        // the membership view is re-read every poll, so a mid-reduce death
        // lowers the bar instead of stalling it.
        port.wait_until(|| {
            let alive = port.alive_count() as u64;
            c.with_coll(|s| s.flat.get(&epoch).map_or(0, |a| a.1)) >= alive
        })
        .await;
        let total = c.with_coll(|s| s.flat.remove(&epoch)).map_or(0, |a| a.0);
        for dst in 1..p {
            port.post(
                dst,
                h.result,
                [epoch, total, 0, 0],
                Payload::None,
                Mark::User,
            )
            .await;
        }
        total
    } else {
        port.post(0, h.flat, [epoch, value, 0, 0], Payload::None, Mark::User)
            .await;
        port.wait_until(|| c.with_coll(|s| s.result.contains_key(&epoch)) || port.peer_dead(0))
            .await;
        c.with_coll(|s| s.result.remove(&epoch)).unwrap_or(value)
    }
}

async fn reduce_tree<C: CollAccess>(c: &C, epoch: u64, value: u64) -> u64 {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    let me = port.proc_id();
    // Combine up a binomial tree rooted at 0: in round r, processors at
    // even multiples of 2^r receive from the odd multiples 2^r away.
    let mut acc = value;
    for r in 0..crate::model::ceil_log2(p) {
        let bit = 1usize << r;
        if me & ((bit << 1) - 1) == 0 {
            let partner = me + bit;
            if partner < p {
                port.wait_until(|| {
                    c.with_coll(|s| s.contrib.contains_key(&(epoch, partner as u64)))
                        || port.peer_dead(partner)
                })
                .await;
                let v = c
                    .with_coll(|s| s.contrib.remove(&(epoch, partner as u64)))
                    .unwrap_or(0);
                acc = acc.wrapping_add(v);
            }
        } else if me & (bit - 1) == 0 {
            let parent = me - bit;
            port.post(
                parent,
                h.contrib,
                [epoch, me as u64, acc, 0],
                Payload::None,
                Mark::User,
            )
            .await;
            break;
        }
    }
    // Fan the total back down the (high-bit) binomial broadcast tree.
    let total = if me == 0 {
        acc
    } else {
        let parent = me - high_bit(me);
        port.wait_until(|| {
            c.with_coll(|s| s.result.contains_key(&epoch)) || port.peer_dead(parent)
        })
        .await;
        c.with_coll(|s| s.result.remove(&epoch)).unwrap_or(acc)
    };
    let mut step = next_pow_above(me);
    while me + step < p {
        port.post(
            me + step,
            h.result,
            [epoch, total, 0, 0],
            Payload::None,
            Mark::User,
        )
        .await;
        step <<= 1;
    }
    total
}

/// Gathers one block per processor everywhere: `out[q]` is processor `q`'s
/// `words` (empty for confirmed-dead peers whose block never arrived).
pub async fn allgather<C: CollAccess>(c: &C, algo: GatherAlgo, words: &[u64]) -> Vec<Vec<u64>> {
    let port = c.port();
    port.note_coll(CollKind::Allgather);
    let epoch = c.with_coll(|s| s.next_epoch(FAM_GATHER));
    let p = port.num_procs();
    let me = port.proc_id();
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
    out[me] = words.to_vec();
    if p == 1 {
        return out;
    }
    match algo {
        GatherAlgo::Ring => {
            let h = c.handlers();
            let succ = (me + 1) % p;
            let pred = (me + p - 1) % p;
            // Step s forwards the block that originated s hops upstream;
            // a dead predecessor leaves those origins empty, but the
            // forwards continue so downstream survivors never block on us.
            for s in 0..p - 1 {
                let send_idx = (me + p - s) % p;
                let recv_idx = (me + p - s - 1) % p;
                port.post(
                    succ,
                    h.block,
                    [epoch, send_idx as u64, 0, 0],
                    Payload::from_words(out[send_idx].clone()),
                    Mark::Bulk,
                )
                .await;
                port.wait_until(|| {
                    c.with_coll(|s| s.blocks.contains_key(&(epoch, recv_idx as u64)))
                        || port.peer_dead(pred)
                })
                .await;
                out[recv_idx] = c
                    .with_coll(|s| s.blocks.remove(&(epoch, recv_idx as u64)))
                    .unwrap_or_default();
            }
        }
        GatherAlgo::Direct => {
            direct_exchange(c, epoch, &mut out, |_| words.to_vec(), false).await;
        }
    }
    c.with_coll(|s| CollState::sweep(&mut s.blocks, epoch));
    out
}

/// Personalized all-to-all: processor `q` receives `blocks[q]` from every
/// peer; `out[q]` is what `q` sent here (empty for confirmed-dead peers).
/// `blocks` must hold one entry per processor.
pub async fn alltoall<C: CollAccess>(c: &C, algo: A2aAlgo, blocks: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let port = c.port();
    let p = port.num_procs();
    assert_eq!(blocks.len(), p, "alltoall needs one block per processor");
    port.note_coll(CollKind::AllToAll);
    let epoch = c.with_coll(|s| s.next_epoch(FAM_A2A));
    let me = port.proc_id();
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); p];
    out[me] = blocks[me].clone();
    if p == 1 {
        return out;
    }
    let h = c.handlers();
    match algo {
        A2aAlgo::Direct => {
            direct_exchange(c, epoch, &mut out, |dst| blocks[dst].clone(), true).await;
        }
        A2aAlgo::Pairwise => {
            for s in 1..p {
                let to = (me + s) % p;
                let from = (me + p - s) % p;
                port.post(
                    to,
                    h.exch,
                    [epoch, me as u64, 0, 0],
                    Payload::from_words(blocks[to].clone()),
                    Mark::Bulk,
                )
                .await;
                port.wait_until(|| {
                    c.with_coll(|st| st.exch.contains_key(&(epoch, from as u64)))
                        || port.peer_dead(from)
                })
                .await;
                out[from] = c
                    .with_coll(|st| st.exch.remove(&(epoch, from as u64)))
                    .unwrap_or_default();
            }
        }
    }
    c.with_coll(|s| CollState::sweep(&mut s.exch, epoch));
    out
}

/// The shared body of the direct (fully-connected) exchanges: post one
/// block to every peer in staggered order, then collect until every
/// still-alive peer's block (or its death) accounts for all `P−1` slots.
async fn direct_exchange<C: CollAccess>(
    c: &C,
    epoch: u64,
    out: &mut [Vec<u64>],
    block_for: impl Fn(usize) -> Vec<u64>,
    personalized: bool,
) {
    let port = c.port();
    let h = c.handlers();
    let p = port.num_procs();
    let me = port.proc_id();
    let handler = if personalized { h.exch } else { h.block };
    for off in 1..p {
        let dst = (me + off) % p;
        port.post(
            dst,
            handler,
            [epoch, me as u64, 0, 0],
            Payload::from_words(block_for(dst)),
            Mark::Bulk,
        )
        .await;
    }
    port.wait_until(|| {
        let dead = p - port.alive_count();
        let got = c.with_coll(|s| {
            let map = if personalized { &s.exch } else { &s.blocks };
            map.range((epoch, 0)..=(epoch, u64::MAX)).count()
        });
        got + dead >= p - 1
    })
    .await;
    let got: Vec<(u64, Vec<u64>)> = c.with_coll(|s| {
        let map = if personalized {
            &mut s.exch
        } else {
            &mut s.blocks
        };
        let keys: Vec<(u64, u64)> = map
            .range((epoch, 0)..=(epoch, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .filter_map(|k| map.remove(&k).map(|w| (k.1, w)))
            .collect()
    });
    for (src, w) in got {
        out[src as usize] = w;
    }
}
