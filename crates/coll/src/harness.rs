//! A minimal SPMD harness for measuring one collective in isolation.
//!
//! The conformance suite compares the analytic model against *simulated*
//! completion time; this module builds the smallest cluster that can run
//! one collective — [`CollState`] is the entire user state — and reports
//! when the last processor's call returned (trailing acks excluded, since
//! the model predicts operation completion, not wire drain).

use std::cell::Cell;
use std::rc::Rc;

use nowlab_am::{AmCluster, AmPort, NetConfig};
use nowlab_sim::{Sim, SimDelta, SimTime};

use crate::{ops, A2aAlgo, BcastAlgo, CollAccess, CollHandlers, CollState, GatherAlgo, ReduceAlgo};

/// A [`CollAccess`] over a bare cluster whose user state *is* the
/// [`CollState`] (no application around it).
pub struct RawColl {
    port: AmPort,
    handlers: CollHandlers,
}

impl RawColl {
    /// Processor `proc`'s access to a cluster prepared by
    /// [`install`].
    pub fn new(cluster: &AmCluster, handlers: CollHandlers, proc: usize) -> Self {
        RawColl {
            port: cluster.port(proc),
            handlers,
        }
    }
}

impl CollAccess for RawColl {
    fn port(&self) -> &AmPort {
        &self.port
    }

    fn handlers(&self) -> CollHandlers {
        self.handlers
    }

    fn with_coll<R>(&self, f: impl FnOnce(&mut CollState) -> R) -> R {
        self.port.with_state::<CollState, R>(f)
    }
}

/// Registers the collective handlers on `cluster` and installs a fresh
/// [`CollState`] as every processor's user state.
pub fn install(cluster: &AmCluster) -> CollHandlers {
    let handlers = CollHandlers::register(cluster, |any| {
        any.downcast_mut::<CollState>()
            .expect("harness user state is CollState")
    });
    for p in 0..cluster.stats().per_proc.len() {
        cluster.set_state(p, Box::new(CollState::default()));
    }
    handlers
}

/// One collective call to measure: the variant plus the payload size in
/// 64-bit words (per processor for allgather, per destination for
/// all-to-all).
#[derive(Clone, Copy, Debug)]
pub enum OpSpec {
    /// Broadcast `n` words from processor 0.
    Broadcast(BcastAlgo, usize),
    /// Allreduce-sum of one word per processor.
    Reduce(ReduceAlgo),
    /// Allgather of `n`-word per-processor blocks.
    Allgather(GatherAlgo, usize),
    /// All-to-all of `n`-word per-destination blocks.
    AllToAll(A2aAlgo, usize),
}

impl OpSpec {
    /// The payload size in bytes the cost model sees for this op.
    pub fn bytes(&self) -> u64 {
        match self {
            OpSpec::Broadcast(_, n) | OpSpec::Allgather(_, n) | OpSpec::AllToAll(_, n) => {
                *n as u64 * 8
            }
            OpSpec::Reduce(_) => 0,
        }
    }
}

/// What [`measure`] observed.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Virtual time at which the *last* processor's call returned.
    pub elapsed: SimDelta,
    /// One order-insensitive checksum of the received data per processor
    /// (all equal on a healthy cluster — the correctness half of the
    /// conformance contract).
    pub checks: Vec<u64>,
}

/// Deterministic per-word test pattern.
fn pattern(seed: u64, i: u64) -> u64 {
    (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_add(i.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

fn fold(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &w in words {
        acc = acc.wrapping_add(w);
    }
    acc
}

/// Runs `op` once on a fresh `procs`-processor cluster over `net` and
/// reports completion time and per-processor result checksums.
pub fn measure(op: OpSpec, procs: usize, net: NetConfig) -> Measured {
    let sim = Sim::new();
    let cluster = AmCluster::new(sim.clone(), net, procs);
    let handlers = install(&cluster);
    let done = Rc::new(Cell::new(0usize));
    let mut handles = Vec::with_capacity(procs);
    for me in 0..procs {
        let access = RawColl::new(&cluster, handlers, me);
        let cluster = cluster.clone();
        let done = Rc::clone(&done);
        handles.push(sim.spawn(async move {
            let port = access.port();
            let check = match op {
                OpSpec::Broadcast(algo, n) => {
                    let words: Vec<u64> = if port.proc_id() == 0 {
                        (0..n as u64).map(|i| pattern(1, i)).collect()
                    } else {
                        Vec::new()
                    };
                    let got = ops::broadcast(&access, algo, 0, &words).await;
                    fold(&got)
                }
                OpSpec::Reduce(algo) => {
                    ops::allreduce_sum(&access, algo, pattern(2, port.proc_id() as u64)).await
                }
                OpSpec::Allgather(algo, n) => {
                    let words: Vec<u64> = (0..n as u64)
                        .map(|i| pattern(port.proc_id() as u64, i))
                        .collect();
                    let got = ops::allgather(&access, algo, &words).await;
                    let mut acc = 0u64;
                    for b in &got {
                        acc = acc.wrapping_add(fold(b));
                    }
                    acc
                }
                OpSpec::AllToAll(algo, n) => {
                    let me = port.proc_id() as u64;
                    let blocks: Vec<Vec<u64>> = (0..procs as u64)
                        .map(|dst| {
                            (0..n as u64)
                                .map(|i| pattern(me ^ (dst << 32), i))
                                .collect()
                        })
                        .collect();
                    let got = ops::alltoall(&access, algo, &blocks).await;
                    // Personalized: sum what everyone sent *to this rank*
                    // is rank-dependent, so checksum over the senders'
                    // seeds instead to keep checks comparable.
                    let mut acc = 0u64;
                    for (src, b) in got.iter().enumerate() {
                        acc = acc.wrapping_add(
                            fold(b).wrapping_sub(fold(
                                &(0..n as u64)
                                    .map(|i| pattern(src as u64 ^ (me << 32), i))
                                    .collect::<Vec<u64>>(),
                            )),
                        );
                    }
                    acc
                }
            };
            let finished = port.now();
            // Exit protocol: drain own acks while everyone else is still
            // serving, then spin the network until the whole cluster is
            // done — otherwise an early finisher stops polling and the
            // stragglers' posts to it never complete.
            port.quiesce().await;
            done.set(done.get() + 1);
            if done.get() == procs {
                cluster.poke_all();
            }
            port.wait_until(|| done.get() == procs).await;
            (finished, check)
        }));
    }
    sim.run();
    let mut elapsed = SimDelta::ZERO;
    let mut checks = Vec::with_capacity(procs);
    for h in handles {
        let (finished, check) = h.try_take().expect("harness processor completed");
        elapsed = elapsed.max(finished.since(SimTime::ZERO));
        checks.push(check);
    }
    Measured { elapsed, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_delivers_identical_data_on_every_variant() {
        for algo in BcastAlgo::ALL {
            let m = measure(OpSpec::Broadcast(algo, 100), 8, NetConfig::berkeley_now());
            let expect: Vec<u64> = (0..100).map(|i| pattern(1, i)).collect();
            for (p, chk) in m.checks.iter().enumerate() {
                assert_eq!(*chk, fold(&expect), "{algo} proc {p}");
            }
            assert!(m.elapsed > SimDelta::ZERO, "{algo}");
        }
    }

    #[test]
    fn reduce_agrees_with_a_local_sum_on_every_variant() {
        let mut expect = 0u64;
        for q in 0..8u64 {
            expect = expect.wrapping_add(pattern(2, q));
        }
        for algo in ReduceAlgo::ALL {
            let m = measure(OpSpec::Reduce(algo), 8, NetConfig::berkeley_now());
            assert_eq!(m.checks, vec![expect; 8], "{algo}");
        }
    }

    #[test]
    fn allgather_collects_every_block_on_every_variant() {
        let mut expect = 0u64;
        for q in 0..6u64 {
            for i in 0..40u64 {
                expect = expect.wrapping_add(pattern(q, i));
            }
        }
        for algo in GatherAlgo::ALL {
            let m = measure(OpSpec::Allgather(algo, 40), 6, NetConfig::berkeley_now());
            assert_eq!(m.checks, vec![expect; 6], "{algo}");
        }
    }

    #[test]
    fn alltoall_routes_personalized_blocks_on_every_variant() {
        for algo in A2aAlgo::ALL {
            let m = measure(OpSpec::AllToAll(algo, 16), 6, NetConfig::berkeley_now());
            // The harness checksum subtracts the expected pattern per
            // (src, dst) pair, so a correct exchange nets to zero.
            assert_eq!(m.checks, vec![0; 6], "{algo}");
        }
    }

    #[test]
    fn odd_processor_counts_work() {
        for procs in [2, 3, 5, 7] {
            for algo in BcastAlgo::ALL {
                let m = measure(
                    OpSpec::Broadcast(algo, 33),
                    procs,
                    NetConfig::berkeley_now(),
                );
                assert_eq!(m.checks.len(), procs, "{algo} p={procs}");
                assert!(
                    m.checks.windows(2).all(|w| w[0] == w[1]),
                    "{algo} p={procs}"
                );
            }
            for algo in ReduceAlgo::ALL {
                let m = measure(OpSpec::Reduce(algo), procs, NetConfig::berkeley_now());
                assert!(
                    m.checks.windows(2).all(|w| w[0] == w[1]),
                    "{algo} p={procs}"
                );
            }
        }
    }
}
