//! Predicted-vs-simulated conformance suite (the collectives analogue of
//! `tests/models_vs_measured.rs`).
//!
//! Every algorithm variant of every collective runs at three payload
//! sizes crossed with three LogGP points — the Berkeley NOW baseline, a
//! high-overhead machine (o = 13 µs, the paper's mid sweep point), and a
//! bandwidth-starved machine (5 MB/s) — and the analytic model of
//! `nowlab_coll::model` must predict the simulated completion time within
//! a pinned relative-error bound. A second contract checks the *selector*:
//! at every (size, point) the model-chosen variant must also be the
//! measured-cheapest one (within a small tie tolerance near crossovers).
//!
//! The golden table printed on failure (`cargo test -- --nocapture`) shows
//! predicted, measured, and relative error per cell, so a drift in either
//! the algorithms or the model is attributable at a glance.

use nowlab_am::{Knobs, NetConfig};
use nowlab_coll::harness::{measure, OpSpec};
use nowlab_coll::model::{allgather_us, alltoall_us, bcast_us, reduce_us};
use nowlab_coll::{A2aAlgo, BcastAlgo, CollConfig, GatherAlgo, ReduceAlgo, Selector};
use nowlab_sim::SimDelta;

const PROCS: usize = 8;

/// Payload sizes in words: one AM packet, a KiB, and a bulk payload.
const SIZES: [usize; 3] = [8, 128, 2048];

/// The three calibration points of the conformance contract.
fn points() -> Vec<(&'static str, NetConfig)> {
    let base = NetConfig::berkeley_now();
    let high_o = base.with_knobs(Knobs::with_overhead(SimDelta::from_micros(13.0 - 2.9)));
    let low_bw = base.with_knobs(
        Knobs::with_bulk_bandwidth(&base.machine, 5.0).expect("5 MB/s is below the baseline"),
    );
    vec![("baseline", base), ("high-o", high_o), ("low-bw", low_bw)]
}

/// |pred − meas| / meas.
fn rel_error(pred_us: f64, meas: SimDelta) -> f64 {
    let meas_us = meas.as_micros_f64();
    (pred_us - meas_us).abs() / meas_us
}

/// Measures `op` at `net` and returns (variant-name, predicted µs,
/// measured µs, relative error), printing one golden-table row.
fn cell(label: &str, op: OpSpec, net: NetConfig) -> f64 {
    let (name, pred) = match op {
        OpSpec::Broadcast(a, n) => (a.to_string(), bcast_us(&net, a, PROCS, n as u64 * 8)),
        OpSpec::Reduce(a) => (a.to_string(), reduce_us(&net, a, PROCS)),
        OpSpec::Allgather(a, n) => (a.to_string(), allgather_us(&net, a, PROCS, n as u64 * 8)),
        OpSpec::AllToAll(a, n) => (a.to_string(), alltoall_us(&net, a, PROCS, n as u64 * 8)),
    };
    let m = measure(op, PROCS, net);
    let err = rel_error(pred, m.elapsed);
    println!(
        "{label:<9} {name:<17} pred={pred:>9.1}us meas={:>9.1}us err={err:.3}",
        m.elapsed.as_micros_f64()
    );
    err
}

// Golden bounds: observed worst-case relative errors at the time of
// writing were broadcast 0.157 (the chain's trailing-ack drift at the
// baseline), reduce 0.209 (tree at the baseline, where idle leaves drain
// acks inside the window), allgather 0.084 and all-to-all 0.084 (the
// direct incast in the host-bound regime). Pinned at ~1.4× the
// observation: the simulation is deterministic, so these only move if
// the algorithms or the model genuinely change.

#[test]
fn broadcast_model_tracks_simulation_at_every_point() {
    let mut worst = 0.0f64;
    for (label, net) in points() {
        for n in SIZES {
            for algo in BcastAlgo::ALL {
                worst = worst.max(cell(label, OpSpec::Broadcast(algo, n), net));
            }
        }
    }
    assert!(worst < 0.22, "broadcast model err {worst:.3}");
}

#[test]
fn reduce_model_tracks_simulation_at_every_point() {
    let mut worst = 0.0f64;
    for (label, net) in points() {
        for algo in ReduceAlgo::ALL {
            worst = worst.max(cell(label, OpSpec::Reduce(algo), net));
        }
    }
    assert!(worst < 0.29, "reduce model err {worst:.3}");
}

#[test]
fn allgather_model_tracks_simulation_at_every_point() {
    let mut worst = 0.0f64;
    for (label, net) in points() {
        for n in SIZES {
            for algo in GatherAlgo::ALL {
                worst = worst.max(cell(label, OpSpec::Allgather(algo, n), net));
            }
        }
    }
    assert!(worst < 0.12, "allgather model err {worst:.3}");
}

#[test]
fn alltoall_model_tracks_simulation_at_every_point() {
    let mut worst = 0.0f64;
    for (label, net) in points() {
        for n in SIZES {
            for algo in A2aAlgo::ALL {
                worst = worst.max(cell(label, OpSpec::AllToAll(algo, n), net));
            }
        }
    }
    assert!(worst < 0.12, "all-to-all model err {worst:.3}");
}

/// The selector contract: at every (size, LogGP point) the model-chosen
/// variant must be measured-cheapest, within a tie tolerance near
/// crossovers (where two variants are genuinely within a few percent of
/// each other, either choice is correct).
const TIE_TOLERANCE: f64 = 1.05;

fn assert_selected_is_measured_best(
    label: &str,
    family: &str,
    chosen: String,
    timed: &[(String, SimDelta)],
) {
    let (best_name, best) = timed
        .iter()
        .min_by_key(|(_, t)| *t)
        .expect("at least one variant")
        .clone();
    let (_, chosen_t) = timed
        .iter()
        .find(|(n, _)| *n == chosen)
        .expect("selector picked a known variant")
        .clone();
    assert!(
        chosen_t.as_micros_f64() <= best.as_micros_f64() * TIE_TOLERANCE,
        "{label} {family}: selector picked {chosen} ({:.1}us) but {best_name} measured {:.1}us",
        chosen_t.as_micros_f64(),
        best.as_micros_f64(),
    );
}

#[test]
fn selector_picks_the_measured_cheapest_variant_everywhere() {
    for (label, net) in points() {
        let sel = Selector::new(net, PROCS, CollConfig::default());
        for n in SIZES {
            let bytes = n as u64 * 8;
            let timed: Vec<(String, SimDelta)> = BcastAlgo::ALL
                .iter()
                .map(|&a| {
                    (
                        a.to_string(),
                        measure(OpSpec::Broadcast(a, n), PROCS, net).elapsed,
                    )
                })
                .collect();
            assert_selected_is_measured_best(
                label,
                "broadcast",
                sel.broadcast(bytes).to_string(),
                &timed,
            );

            let timed: Vec<(String, SimDelta)> = GatherAlgo::ALL
                .iter()
                .map(|&a| {
                    (
                        a.to_string(),
                        measure(OpSpec::Allgather(a, n), PROCS, net).elapsed,
                    )
                })
                .collect();
            assert_selected_is_measured_best(
                label,
                "allgather",
                sel.allgather(bytes).to_string(),
                &timed,
            );

            let timed: Vec<(String, SimDelta)> = A2aAlgo::ALL
                .iter()
                .map(|&a| {
                    (
                        a.to_string(),
                        measure(OpSpec::AllToAll(a, n), PROCS, net).elapsed,
                    )
                })
                .collect();
            assert_selected_is_measured_best(
                label,
                "all-to-all",
                sel.alltoall(bytes).to_string(),
                &timed,
            );
        }
        let timed: Vec<(String, SimDelta)> = ReduceAlgo::ALL
            .iter()
            .map(|&a| {
                (
                    a.to_string(),
                    measure(OpSpec::Reduce(a), PROCS, net).elapsed,
                )
            })
            .collect();
        assert_selected_is_measured_best(label, "reduce", sel.reduce().to_string(), &timed);
    }
}

/// The crossover the sweep axis demonstrates, pinned in *measured* time:
/// at the baseline a bulk broadcast is cheapest pipelined (chain or
/// scatter-allgather) and the direct allgather loses to the ring, while at
/// high overhead the message-frugal binomial tree and the direct exchange
/// win — and the selector follows both flips.
#[test]
fn measured_crossover_matches_selected_crossover() {
    let base = NetConfig::berkeley_now();
    let high_o = base.with_knobs(Knobs::with_overhead(SimDelta::from_micros(103.0 - 2.9)));
    let n = 2048; // 16 KiB

    let meas = |algo, net| measure(OpSpec::Broadcast(algo, n), PROCS, net).elapsed;
    // Baseline: pipelining beats the binomial tree on a bulk payload.
    assert!(meas(BcastAlgo::ScatterAllgather, base) < meas(BcastAlgo::Binomial, base));
    assert_ne!(
        Selector::new(base, PROCS, CollConfig::default()).broadcast(n as u64 * 8),
        BcastAlgo::Binomial
    );
    // High overhead: the per-message budget dominates; the binomial tree's
    // O(log P) critical path wins and the selector flips with it.
    assert!(meas(BcastAlgo::Binomial, high_o) < meas(BcastAlgo::ScatterAllgather, high_o));
    assert_eq!(
        Selector::new(high_o, PROCS, CollConfig::default()).broadcast(n as u64 * 8),
        BcastAlgo::Binomial
    );
}
