//! Properties of the per-message LogGP cost trace.
//!
//! Three guarantees the tracing subsystem makes, checked across the whole
//! benchmark suite:
//!
//! 1. **Exact attribution** — for every completed, untangled message, the
//!    seven component spans sum *exactly* (to the nanosecond) to the
//!    end-to-end time. The spans are differences of adjacent
//!    discrete-event timestamps, so this is a telescoping identity the
//!    recorder must not break.
//! 2. **Causal ordering** — the lifecycle timestamps are monotone:
//!    `send_begin ≤ inject ≤ tx_start ≤ wire_done ≤ arrival ≤ visible ≤
//!    pop ≤ done`.
//! 3. **Observation only** — a traced run is *identical* to an untraced
//!    run in every observable output (runtime, checksum, statistics, and
//!    simulator event count): the sink observes, never schedules.

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{RunSpec, SimDelta, TraceMode, TraceReport};
use nowlab::{FaultPlan, NetConfig};

fn spec() -> RunSpec {
    RunSpec::new(4).with_event_limit(300_000_000)
}

fn full_trace(report: &TraceReport) -> &TraceReport {
    assert!(
        !report.records.is_empty(),
        "full-mode trace must keep records"
    );
    report
}

/// Exactness and causality for every message of every app in the suite.
#[test]
fn component_costs_sum_exactly_to_end_to_end_across_the_suite() {
    for app in suite_scaled(SuiteScale::Test) {
        let out = app.run(&spec().with_trace(TraceMode::Full));
        assert!(out.completed, "{}", app.name());
        let report = full_trace(out.trace.as_ref().expect("trace requested"));
        assert!(report.summary.completed > 0, "{}", app.name());
        for r in &report.records {
            if !r.completed {
                continue;
            }
            assert!(
                !r.tangled,
                "{} msg {} tangled on a fault-free wire",
                app.name(),
                r.id
            );
            assert_eq!(
                r.component_sum(),
                r.end_to_end(),
                "{} msg {}: components must sum to end-to-end",
                app.name(),
                r.id
            );
            // Causal ordering of the lifecycle timestamps.
            assert!(r.send_begin <= r.inject, "{} msg {}", app.name(), r.id);
            assert!(r.inject <= r.tx_start, "{} msg {}", app.name(), r.id);
            assert!(r.tx_start <= r.wire_done, "{} msg {}", app.name(), r.id);
            assert!(r.wire_done <= r.arrival, "{} msg {}", app.name(), r.id);
            assert!(r.arrival <= r.visible, "{} msg {}", app.name(), r.id);
            assert!(r.visible <= r.pop, "{} msg {}", app.name(), r.id);
            assert!(r.pop <= r.done, "{} msg {}", app.name(), r.id);
            if let Some(h) = r.handler_at {
                assert!(
                    h >= r.pop,
                    "{} msg {}: handler before pop",
                    app.name(),
                    r.id
                );
            }
        }
        // The per-run totals inherit exactness: component totals plus the
        // e2e histogram agree over the same message population.
        assert_eq!(
            report.summary.totals.sum(),
            report.summary.e2e_total,
            "{}: summary totals must telescope too",
            app.name()
        );
    }
}

/// A traced run must be indistinguishable from an untraced run in every
/// observable output — tracing observes the simulation, never perturbs it.
#[test]
fn traced_run_is_identical_to_untraced_run() {
    for app in suite_scaled(SuiteScale::Test) {
        let plain = app.run(&spec());
        assert!(plain.trace.is_none(), "{}", app.name());
        let mut traced = app.run(&spec().with_trace(TraceMode::Full));
        assert!(traced.trace.take().is_some(), "{}", app.name());
        // With the report removed, every remaining field — runtime, stats,
        // checksum, and the simulator event count — must be equal.
        assert_eq!(plain, traced, "{}: tracing changed the run", app.name());
    }
}

/// Summary mode (bounded memory) aggregates to exactly the same summary
/// as full mode, just without the per-message records.
#[test]
fn summary_mode_matches_full_mode_aggregation() {
    for app in suite_scaled(SuiteScale::Test) {
        let full = app.run(&spec().with_trace(TraceMode::Full));
        let summary = app.run(&spec().with_trace(TraceMode::Summary));
        let full = full.trace.expect("full trace");
        let summary = summary.trace.expect("summary trace");
        assert!(summary.records.is_empty(), "{}", app.name());
        assert_eq!(full.summary, summary.summary, "{}", app.name());
    }
}

/// On a faulty wire the trace sees the reliability protocol at work —
/// drops and retransmits are recorded — while attribution stays exact for
/// every untangled message.
#[test]
fn faulty_wire_traces_retransmissions_with_exact_attribution() {
    let net = NetConfig::berkeley_now().with_faults(FaultPlan::with_drop_rate(0.05, 7));
    let spec = RunSpec::new(4)
        .with_net(net)
        .with_event_limit(50_000_000)
        .with_time_limit(SimDelta::from_secs(120.0))
        .with_trace(TraceMode::Full);
    let app = suite_scaled(SuiteScale::Test)
        .into_iter()
        .find(|a| a.name() == "Radix")
        .expect("radix in suite");
    let out = app.run(&spec);
    assert!(out.completed, "radix under 5% drops");
    let report = out.trace.expect("trace requested");
    assert!(report.summary.drops > 0, "fault plan must bite");
    assert!(report.summary.retransmits > 0, "protocol must recover");
    let mut retransmitted = 0u64;
    for r in &report.records {
        if !r.completed || r.tangled {
            continue;
        }
        assert_eq!(
            r.component_sum(),
            r.end_to_end(),
            "msg {}: exactness must survive retransmission",
            r.id
        );
        if r.attempts > 1 {
            retransmitted += 1;
        }
    }
    assert!(
        retransmitted > 0,
        "some surviving message was retransmitted"
    );
}
