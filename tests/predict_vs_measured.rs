//! Prediction accuracy: slowdown curves re-priced from ONE baseline trace
//! versus curves measured by actually re-simulating every sweep point.
//!
//! This is the predictor's end-to-end promise: run the app once with full
//! tracing, and the symbolic re-pricing of the message DAG reproduces the
//! measured `--axis L` and `--axis o` sensitivity curves. The golden
//! bounds below are pinned from observed behavior; they are deliberately
//! tight so a regression in either the transport or the DAG pricing shows
//! up as a bound violation rather than a silent drift.
//!
//! Where error remains, it is the frozen-baseline-order approximation:
//! re-pricing keeps the baseline's NIC serialization order, while the
//! re-simulated run may interleave differently (see DESIGN.md §13).

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{sweep, Axis, RunSpec, SweepableApp, TraceMode};
use nowlab::predict::analyze;

fn spec() -> RunSpec {
    RunSpec::new(4).with_event_limit(300_000_000)
}

fn app_named(name: &str) -> Box<dyn SweepableApp> {
    suite_scaled(SuiteScale::Test)
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("{name} in suite"))
}

/// Predicts the slowdown at each `desired` value of `axis` from one traced
/// baseline run, returns `(desired, predicted, measured)` triples.
fn curves(app: &dyn SweepableApp, axis: Axis, values: &[f64]) -> Vec<(f64, f64, f64)> {
    let spec = spec();
    let traced = app.run(&spec.with_trace(TraceMode::Full));
    assert!(traced.completed, "{} baseline", app.name());
    let report = traced.trace.as_ref().expect("trace requested");
    let analysis = analyze(report, &spec.net, spec.procs, traced.runtime)
        .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    let base_ns = analysis.baseline_runtime().as_nanos() as f64;

    let measured = sweep(app, &spec, axis, values).expect("sweep completes");
    values
        .iter()
        .zip(&measured.points)
        .map(|(&desired, point)| {
            let knobs = axis
                .knobs_for(&spec.net.machine, desired)
                .expect("on-axis value");
            let mut cfg = spec.net;
            cfg.knobs = knobs;
            let predicted = analysis.predict_runtime(&cfg).as_nanos() as f64 / base_ns;
            (desired, predicted, point.slowdown)
        })
        .collect()
}

fn max_rel_error(curve: &[(f64, f64, f64)]) -> f64 {
    curve
        .iter()
        .map(|&(_, pred, meas)| (pred - meas).abs() / meas)
        .fold(0.0, f64::max)
}

/// `bound` is the pinned golden maximum relative error over the whole
/// curve; `knee_bound` is the (tighter) bound applied to grid points up to
/// `knee_max` — the region around the tolerance threshold, where accuracy
/// matters most. Runs are deterministic, so the observed errors are exact;
/// the pins carry a small margin only so that benign transport changes
/// surface as a bound update rather than noise.
fn assert_curve(app: &str, axis: Axis, values: &[f64], bound: f64, knee_max: f64, knee_bound: f64) {
    let app = app_named(app);
    let curve = curves(app.as_ref(), axis, values);
    let err = max_rel_error(&curve);
    eprintln!(
        "{} {:?}: max relative error {:.4} over {:?}",
        app.name(),
        axis,
        err,
        curve
    );
    assert!(
        err <= bound,
        "{} {:?}: max relative error {err:.4} exceeds the pinned bound \
         {bound}: {curve:?}",
        app.name(),
        axis
    );
    for &(desired, pred, meas) in curve.iter().filter(|&&(d, _, _)| d <= knee_max) {
        let e = (pred - meas).abs() / meas;
        assert!(
            e <= knee_bound,
            "{} {:?} at {desired}: knee-region error {e:.4} exceeds \
             {knee_bound}",
            app.name(),
            axis
        );
    }
    // The predictor's known bias is pessimistic: where it errs beyond the
    // knee bound, it must err by over-predicting, never by promising a
    // speedup the machine cannot deliver.
    for &(desired, pred, meas) in &curve {
        let e = (pred - meas) / meas;
        assert!(
            e >= -knee_bound,
            "{} {:?} at {desired}: under-prediction {e:.4}",
            app.name(),
            axis
        );
    }
}

/// Radix sort's latency curve, predicted within the pinned bounds.
#[test]
fn radix_latency_curve_is_predicted_from_one_run() {
    assert_curve(
        "Radix",
        Axis::Latency,
        &[5.0, 15.0, 55.0, 105.0],
        0.31,
        15.0,
        0.10,
    );
}

/// Radix sort's overhead curve, predicted within the pinned bounds.
#[test]
fn radix_overhead_curve_is_predicted_from_one_run() {
    assert_curve(
        "Radix",
        Axis::Overhead,
        &[2.9, 6.9, 23.0, 103.0],
        0.10,
        6.9,
        0.10,
    );
}

/// EM3D's latency curve, predicted within the pinned bounds.
#[test]
fn em3d_latency_curve_is_predicted_from_one_run() {
    assert_curve(
        "EM3D(write)",
        Axis::Latency,
        &[5.0, 15.0, 55.0, 105.0],
        0.42,
        15.0,
        0.10,
    );
}

/// EM3D's overhead curve, predicted within the pinned bounds.
#[test]
fn em3d_overhead_curve_is_predicted_from_one_run() {
    assert_curve(
        "EM3D(write)",
        Axis::Overhead,
        &[2.9, 6.9, 23.0, 103.0],
        0.20,
        2.9,
        0.10,
    );
}
