//! Cross-layer properties of the metrics subsystem, on real application
//! runs (not the metrics crate's synthetic unit fixtures):
//!
//! 1. **Observer neutrality** — enabling metrics changes *nothing* the
//!    simulation can see: runtime, checksum, completion, event count,
//!    and every per-processor communication counter are bit-identical
//!    between a metered and an unmetered run.
//! 2. **Conservation** — per processor, every sampled window's state
//!    components sum exactly to the window's length, and the run totals
//!    sum exactly to elapsed simulated time. No nanosecond is lost or
//!    double-counted, in integers, with no epsilon.

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{MetricsMode, RunSpec, SweepableApp};

fn app_named(name: &str) -> Box<dyn SweepableApp> {
    suite_scaled(SuiteScale::Test)
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("app {name} not in the test suite"))
}

fn spec(metrics: MetricsMode) -> RunSpec {
    RunSpec::new(4).with_metrics(metrics)
}

#[test]
fn enabling_metrics_never_changes_simulation_results() {
    for name in ["Radix", "EM3D(write)", "Sample"] {
        let app = app_named(name);
        let off = app.run(&spec(MetricsMode::Off));
        let on = app.run(&spec(MetricsMode::On));
        assert!(off.metrics.is_none());
        assert!(on.metrics.is_some(), "{name}: metrics requested but absent");
        assert_eq!(off.runtime, on.runtime, "{name}: runtime perturbed");
        assert_eq!(off.check, on.check, "{name}: checksum perturbed");
        assert_eq!(off.completed, on.completed, "{name}: completion perturbed");
        assert_eq!(off.events, on.events, "{name}: event count perturbed");
        assert_eq!(off.stats, on.stats, "{name}: comm counters perturbed");
    }
}

#[test]
fn sampled_components_sum_exactly_to_elapsed_time_in_every_window() {
    for name in ["Radix", "EM3D(write)"] {
        let app = app_named(name);
        let report = app
            .run(&spec(MetricsMode::On))
            .metrics
            .expect("metrics requested");
        assert!(report.end_ns > 0, "{name}: empty run");
        for (p, series) in report.procs.iter().enumerate() {
            assert!(!series.timeline.is_empty(), "{name} p{p}: no windows");
            for (w, row) in series.timeline.iter().enumerate() {
                let start = w as u64 * report.window_ns;
                let expect = (report.end_ns - start).min(report.window_ns);
                let got: u64 = row.iter().sum();
                assert_eq!(
                    got, expect,
                    "{name} p{p} window {w}: components sum to {got} ns, \
                     window covers {expect} ns"
                );
            }
            let total: u64 = series.totals.iter().sum();
            assert_eq!(
                total, report.end_ns,
                "{name} p{p}: totals must sum to elapsed simulated time"
            );
            let from_windows: u64 = series.timeline.iter().flatten().sum();
            assert_eq!(total, from_windows, "{name} p{p}: timeline disagrees");
        }
        // The phase partition covers the same processor-nanoseconds.
        let phase_ns: u64 = report.summary.phases.iter().map(|ph| ph.elapsed()).sum();
        assert_eq!(
            phase_ns,
            report.end_ns * report.procs.len() as u64,
            "{name}: phases must partition total processor time"
        );
        // Event-density sampling accounts for every fired event.
        let windows = report.end_ns.div_ceil(report.window_ns).max(1) as usize;
        assert_eq!(report.events_per_window.len(), windows, "{name}");
    }
}

#[test]
fn event_density_sampling_accounts_for_every_event() {
    let app = app_named("Radix");
    let out = app.run(&spec(MetricsMode::On));
    let report = out.metrics.expect("metrics requested");
    let sampled: u64 = report.events_per_window.iter().sum();
    assert_eq!(
        sampled, out.events,
        "per-window event counts must sum to the run's total"
    );
}
