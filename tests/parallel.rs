//! Parallel-sweep equivalence: the worker pool must be invisible in the
//! results. For every job count, an `AxisSweep` — slowdowns, checksums,
//! per-processor `CommStats`, and the drop/retransmit/timeout counters of
//! a seeded fault plan — must compare equal (`PartialEq` over every
//! field) to the sequential `--jobs 1` sweep. Any divergence means run
//! state leaked across the run boundary.

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{sweep_jobs, sweep_many, Axis, NetConfig, SimDelta, SweepError, TraceMode};
use nowlab::{sweep, FaultPlan, RunSpec};

/// A faulty-wire spec: deterministic drops engage the reliability
/// protocol, so retransmit/timeout counters are live and any cross-thread
/// nondeterminism would show up in them. The time limit turns a total
/// stall into an N/A instead of a hang.
fn faulty_spec(procs: usize) -> RunSpec {
    let net = NetConfig::berkeley_now().with_faults(FaultPlan::with_drop_rate(0.05, 7));
    RunSpec::new(procs)
        .with_net(net)
        .with_seed(11)
        .with_event_limit(50_000_000)
        .with_time_limit(SimDelta::from_secs(120.0))
}

/// A short axis: baseline plus two slowed points, enough to produce
/// distinct per-point outcomes without benchmark-scale runtimes.
const O_VALUES: [f64; 3] = [2.9, 13.0, 53.0];

#[test]
fn full_suite_parallel_sweep_is_byte_identical_to_sequential() {
    let apps = suite_scaled(SuiteScale::Test);
    let spec = faulty_spec(4);
    for app in &apps {
        let seq = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 1);
        for jobs in [2, 4] {
            let par = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, jobs);
            assert_eq!(par, seq, "{}: jobs={jobs} diverged", app.name());
        }
        // The seeded fault plan must actually be exercising the reliable
        // path — otherwise this test proves nothing about those counters.
        if let Ok(s) = &seq {
            assert!(
                s.baseline.stats.total_drops() > 0,
                "{}: fault plan injected no drops",
                app.name()
            );
        }
    }
}

#[test]
fn suite_level_fanout_matches_per_app_sequential_sweeps() {
    let apps = suite_scaled(SuiteScale::Test);
    let spec = faulty_spec(4);
    let seq: Vec<Result<_, SweepError>> = apps
        .iter()
        .map(|app| sweep(app.as_ref(), &spec, Axis::Latency, &O_VALUES))
        .collect();
    for jobs in [2, 4] {
        let par = sweep_many(&apps, &spec, Axis::Latency, &O_VALUES, jobs);
        assert_eq!(par, seq, "jobs={jobs} suite fan-out diverged");
    }
}

#[test]
fn parallel_sweep_with_tracing_matches_sequential() {
    // Tracing adds per-run recorder state (the sink lives inside each
    // simulation); a parallel sweep must neither share nor reorder it —
    // every point's `TraceSummary` compares equal to the sequential run's.
    let apps = suite_scaled(SuiteScale::Test);
    let spec = faulty_spec(4).with_trace(TraceMode::Summary);
    let app = &apps[0];
    let seq = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 1)
        .expect("baseline completes under 5% drops");
    for p in &seq.points {
        let s = p.trace.as_ref().expect("tracing was requested");
        assert!(s.completed > 0, "{}: empty trace", app.name());
    }
    let par = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 2)
        .expect("baseline completes under 5% drops");
    assert_eq!(par, seq, "jobs=2 traced sweep diverged");
}

#[test]
fn sequential_and_parallel_agree_on_sweep_errors() {
    // An app whose baseline cannot complete: zero time budget.
    let apps = suite_scaled(SuiteScale::Test);
    let spec = faulty_spec(4).with_time_limit(SimDelta::from_micros(1.0));
    let app = &apps[0];
    let seq = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 1)
        .expect_err("1us budget cannot fit a baseline");
    let par = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 4)
        .expect_err("1us budget cannot fit a baseline");
    assert_eq!(seq, par, "error payloads must match across job counts");
    assert!(matches!(seq, SweepError::IncompleteBaseline { .. }));
}

/// A node-fault spec: processor 1 freezes at 500 µs and thaws 300 µs
/// later — short enough that no detector confirms a death (the run
/// completes on all processors), long enough that heartbeat, suspicion,
/// and retransmission state are all live across worker threads.
fn crash_recovery_spec(procs: usize) -> RunSpec {
    use nowlab::core::{NodeFault, NodeFaultPlan, SimTime};
    let plan = NodeFaultPlan::none()
        .with_seed(0xC4A5)
        .with_fault(NodeFault::crash_recovery(
            1,
            SimTime::ZERO + SimDelta::from_micros(500.0),
            SimDelta::from_micros(300.0),
        ));
    RunSpec::new(procs)
        .with_net(NetConfig::berkeley_now().with_node_faults(plan))
        .with_seed(11)
        .with_event_limit(50_000_000)
        .with_time_limit(SimDelta::from_secs(120.0))
}

#[test]
fn crash_recovery_sweep_is_byte_identical_across_job_counts() {
    let apps = suite_scaled(SuiteScale::Test);
    let spec = crash_recovery_spec(4);
    for app in &apps {
        let seq = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, 1);
        for jobs in [2, 4] {
            let par = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &O_VALUES, jobs);
            assert_eq!(
                par,
                seq,
                "{}: jobs={jobs} diverged under node faults",
                app.name()
            );
        }
        // The plan must actually engage the detector plane, or this test
        // proves nothing about its determinism.
        if let Ok(s) = &seq {
            assert!(
                s.baseline.stats.total_heartbeats() > 0,
                "{}: no heartbeats flowed",
                app.name()
            );
        }
    }
}

#[test]
fn crash_stop_degraded_outcome_is_identical_across_concurrent_replicas() {
    use nowlab::apps::sample::{Sample, SampleParams};
    use nowlab::core::{parallel_map, NodeFault, NodeFaultPlan, SimTime};
    use nowlab::SweepableApp as _;
    // Sample runs under DegradePolicy::Continue: with processor 1 dead
    // for good, the survivors confirm the death and finish degraded.
    let plan = NodeFaultPlan::none()
        .with_seed(0xDEAD)
        .with_fault(NodeFault::crash(
            1,
            SimTime::ZERO + SimDelta::from_micros(800.0),
        ));
    let spec = RunSpec::new(4)
        .with_net(NetConfig::berkeley_now().with_node_faults(plan))
        .with_seed(7)
        .with_event_limit(50_000_000)
        .with_time_limit(SimDelta::from_secs(120.0));
    let app = Sample::new(SampleParams::small());
    let seq = app.run(&spec);
    assert!(
        seq.stats.total_peer_deaths() > 0,
        "p1 was never confirmed dead"
    );
    assert_eq!(seq.completers, 3, "three survivors must finish");
    for jobs in [2, 4] {
        let replicas = parallel_map(jobs, &[(), (), (), ()], |_, _| app.run(&spec));
        for (i, r) in replicas.iter().enumerate() {
            assert_eq!(*r, seq, "replica {i} of jobs={jobs} diverged");
        }
    }
}
