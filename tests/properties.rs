//! Property-based tests (proptest) over the core invariants of the
//! apparatus.

use nowlab::core::calib::{burst_interval_us, calibrate, round_trip_us};
use nowlab::core::models::fit_linear;
use nowlab::sim::{Sim, SimDelta, SimTime};
use nowlab::{Knobs, NetConfig};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The event queue fires timers in non-decreasing time order,
    /// breaking ties by registration order.
    #[test]
    fn timers_fire_in_order(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule(SimTime::from_nanos(d), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie not broken by registration order");
            }
        }
    }

    /// More overhead can never make a message burst complete sooner.
    #[test]
    fn burst_time_is_monotone_in_overhead(
        o1 in 0.0f64..50.0,
        extra in 0.1f64..50.0,
        m in 1usize..40,
    ) {
        let cfg = |d_o: f64| NetConfig::berkeley_now()
            .with_knobs(Knobs::with_overhead(SimDelta::from_micros(d_o)));
        let t1 = burst_interval_us(cfg(o1), m, SimDelta::ZERO);
        let t2 = burst_interval_us(cfg(o1 + extra), m, SimDelta::ZERO);
        prop_assert!(t2 >= t1 - 1e-9, "overhead {o1}+{extra}: {t2} < {t1}");
    }

    /// More gap can never make a burst faster; latency can never make a
    /// round trip faster.
    #[test]
    fn network_knobs_are_monotone(
        d in 0.0f64..80.0,
        extra in 0.1f64..40.0,
    ) {
        let gap_cfg = |g: f64| NetConfig::berkeley_now()
            .with_knobs(Knobs::with_gap(SimDelta::from_micros(g)));
        let b1 = burst_interval_us(gap_cfg(d), 64, SimDelta::ZERO);
        let b2 = burst_interval_us(gap_cfg(d + extra), 64, SimDelta::ZERO);
        prop_assert!(b2 >= b1 - 1e-9);

        let lat_cfg = |l: f64| NetConfig::berkeley_now()
            .with_knobs(Knobs::with_latency(SimDelta::from_micros(l)));
        let r1 = round_trip_us(lat_cfg(d));
        let r2 = round_trip_us(lat_cfg(d + extra));
        prop_assert!(r2 >= r1 - 1e-9);
    }

    /// The §3.3 microbenchmarks recover whatever overhead and latency are
    /// dialed in, and the knobs stay independent (Table 2's property),
    /// across arbitrary knob vectors.
    #[test]
    fn calibration_recovers_random_knobs(
        d_o in 0.0f64..40.0,
        d_lat in 0.0f64..40.0,
    ) {
        let knobs = Knobs {
            d_o: SimDelta::from_micros(d_o),
            d_lat: SimDelta::from_micros(d_lat),
            ..Knobs::baseline()
        };
        let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
        prop_assert!((c.o_mean_us() - (2.9 + d_o)).abs() < 0.2,
            "o: wanted {} got {}", 2.9 + d_o, c.o_mean_us());
        prop_assert!((c.latency_us - (5.0 + d_lat)).abs() < 0.5,
            "L: wanted {} got {}", 5.0 + d_lat, c.latency_us);
    }

    /// Least squares recovers exact affine data regardless of scale.
    #[test]
    fn fit_recovers_affine(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..30,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let f = fit_linear(&xs, &ys);
        prop_assert!((f.slope - slope).abs() < 1e-6);
        prop_assert!((f.intercept - intercept).abs() < 1e-6);
        prop_assert!(f.r2 > 1.0 - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Radix sort sorts arbitrary key sets at arbitrary (small) processor
    /// counts — the app asserts global sortedness and key conservation
    /// internally.
    #[test]
    fn radix_sorts_random_workloads(
        seed in 0u64..1_000,
        procs in 1usize..6,
        keys_pow in 9u32..12,
    ) {
        use nowlab::apps::radix::{Radix, RadixParams};
        use nowlab::{RunSpec, SweepableApp};
        let app = Radix::new(RadixParams {
            total_keys: 1 << keys_pow,
            key_bits: 16,
            digit_bits: 8,
        });
        let out = app.run(&RunSpec::new(procs).with_seed(seed));
        prop_assert!(out.completed);
    }

    /// The parallel Murphi exploration finds exactly the sequential state
    /// space for arbitrary processor counts.
    #[test]
    fn murphi_state_count_is_stable(procs in 1usize..6) {
        use nowlab::apps::murphi::{sequential_explore, Murphi, MurphiParams};
        use nowlab::{RunSpec, SweepableApp};
        let params = MurphiParams { caches: 3 };
        let (count, hash_sum) = sequential_explore(&params);
        let out = Murphi::new(params).run(&RunSpec::new(procs));
        prop_assert!(out.completed);
        prop_assert_eq!(out.check, hash_sum.wrapping_add(count));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The dissemination barrier really synchronizes: under arbitrary
    /// per-processor delays, no processor leaves barrier k before every
    /// processor has entered it.
    #[test]
    fn barrier_synchronizes_under_random_stagger(
        procs in 2usize..9,
        delays in prop::collection::vec(0u64..500, 8),
        rounds in 1usize..4,
    ) {
        use nowlab::splitc::{run_spmd, SpmdConfig};
        use std::cell::RefCell;
        use std::rc::Rc;

        let entered: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(vec![0; rounds]));
        let violations: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        let delays = std::rc::Rc::new(delays);
        let (e2, v2, d2) = (Rc::clone(&entered), Rc::clone(&violations), Rc::clone(&delays));
        let outcome = run_spmd(&SpmdConfig::new(procs), move |ctx| {
            let entered = Rc::clone(&e2);
            let violations = Rc::clone(&v2);
            let delays = Rc::clone(&d2);
            async move {
                // NB: don't borrow inside the `for` head — scrutinee
                // temporaries live for the whole loop.
                let rounds_n = entered.borrow().len();
                for k in 0..rounds_n {
                    let d = delays[(ctx.me() + k) % delays.len()];
                    ctx.compute(SimDelta::from_micros(d as f64)).await;
                    entered.borrow_mut()[k] += 1;
                    ctx.barrier().await;
                    // Everyone must have entered round k by now.
                    if entered.borrow()[k] != ctx.procs() {
                        *violations.borrow_mut() += 1;
                    }
                }
            }
        });
        prop_assert!(outcome.completed);
        prop_assert_eq!(*violations.borrow(), 0, "barrier leaked");
    }
}
