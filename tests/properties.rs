//! Randomized property tests over the core invariants of the apparatus.
//!
//! Each property draws its cases from a seeded [`nowlab_rng::SmallRng`]
//! stream, so the suite is fully deterministic (no shrinking, no
//! regression files) while still exploring a broad region of the input
//! space on every run.

use nowlab::core::calib::{burst_interval_us, calibrate, round_trip_us};
use nowlab::core::models::fit_linear;
use nowlab::sim::{Sim, SimDelta, SimTime};
use nowlab::{Knobs, NetConfig};
use nowlab_rng::{Rng, SeedableRng, SmallRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Uniform f64 in `[lo, hi)`.
fn f64_in(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    lo + rng.gen::<f64>() * (hi - lo)
}

/// The event queue fires timers in non-decreasing time order, breaking
/// ties by registration order.
#[test]
fn timers_fire_in_order() {
    let mut rng = SmallRng::seed_from_u64(0x7131);
    for case in 0..32 {
        let n = rng.gen_range(1..100usize);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000u64)).collect();
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule(SimTime::from_nanos(d), move |sim| {
                log.borrow_mut().push((sim.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time went backwards");
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "case {case}: tie not in registration order"
                );
            }
        }
    }
}

/// More overhead can never make a message burst complete sooner.
#[test]
fn burst_time_is_monotone_in_overhead() {
    let mut rng = SmallRng::seed_from_u64(0xB0);
    for _ in 0..32 {
        let o1 = f64_in(&mut rng, 0.0, 50.0);
        let extra = f64_in(&mut rng, 0.1, 50.0);
        let m = rng.gen_range(1..40usize);
        let cfg = |d_o: f64| {
            NetConfig::berkeley_now().with_knobs(Knobs::with_overhead(SimDelta::from_micros(d_o)))
        };
        let t1 = burst_interval_us(cfg(o1), m, SimDelta::ZERO);
        let t2 = burst_interval_us(cfg(o1 + extra), m, SimDelta::ZERO);
        assert!(t2 >= t1 - 1e-9, "overhead {o1}+{extra}: {t2} < {t1}");
    }
}

/// More gap can never make a burst faster; latency can never make a round
/// trip faster.
#[test]
fn network_knobs_are_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x6A1);
    for _ in 0..32 {
        let d = f64_in(&mut rng, 0.0, 80.0);
        let extra = f64_in(&mut rng, 0.1, 40.0);

        let gap_cfg = |g: f64| {
            NetConfig::berkeley_now().with_knobs(Knobs::with_gap(SimDelta::from_micros(g)))
        };
        let b1 = burst_interval_us(gap_cfg(d), 64, SimDelta::ZERO);
        let b2 = burst_interval_us(gap_cfg(d + extra), 64, SimDelta::ZERO);
        assert!(b2 >= b1 - 1e-9);

        let lat_cfg = |l: f64| {
            NetConfig::berkeley_now().with_knobs(Knobs::with_latency(SimDelta::from_micros(l)))
        };
        let r1 = round_trip_us(lat_cfg(d));
        let r2 = round_trip_us(lat_cfg(d + extra));
        assert!(r2 >= r1 - 1e-9);
    }
}

/// The §3.3 microbenchmarks recover whatever overhead and latency are
/// dialed in, and the knobs stay independent (Table 2's property), across
/// arbitrary knob vectors.
#[test]
fn calibration_recovers_random_knobs() {
    let mut rng = SmallRng::seed_from_u64(0xCA11B);
    for _ in 0..32 {
        let d_o = f64_in(&mut rng, 0.0, 40.0);
        let d_lat = f64_in(&mut rng, 0.0, 40.0);
        let knobs = Knobs {
            d_o: SimDelta::from_micros(d_o),
            d_lat: SimDelta::from_micros(d_lat),
            ..Knobs::baseline()
        };
        let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
        assert!(
            (c.o_mean_us() - (2.9 + d_o)).abs() < 0.2,
            "o: wanted {} got {}",
            2.9 + d_o,
            c.o_mean_us()
        );
        assert!(
            (c.latency_us - (5.0 + d_lat)).abs() < 0.5,
            "L: wanted {} got {}",
            5.0 + d_lat,
            c.latency_us
        );
    }
}

/// Least squares recovers exact affine data regardless of scale.
#[test]
fn fit_recovers_affine() {
    let mut rng = SmallRng::seed_from_u64(0xF17);
    for _ in 0..32 {
        let slope = f64_in(&mut rng, -100.0, 100.0);
        let intercept = f64_in(&mut rng, -100.0, 100.0);
        let n = rng.gen_range(3..30usize);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.slope - slope).abs() < 1e-6);
        assert!((f.intercept - intercept).abs() < 1e-6);
        assert!(f.r2 > 1.0 - 1e-9);
    }
}

/// Radix sort sorts arbitrary key sets at arbitrary (small) processor
/// counts — the app asserts global sortedness and key conservation
/// internally.
#[test]
fn radix_sorts_random_workloads() {
    use nowlab::apps::radix::{Radix, RadixParams};
    use nowlab::{RunSpec, SweepableApp};
    let mut rng = SmallRng::seed_from_u64(0x5047);
    for _ in 0..8 {
        let seed = rng.gen_range(0..1_000u64);
        let procs = rng.gen_range(1..6usize);
        let keys_pow = rng.gen_range(9..12u32);
        let app = Radix::new(RadixParams {
            total_keys: 1 << keys_pow,
            key_bits: 16,
            digit_bits: 8,
        });
        let out = app.run(&RunSpec::new(procs).with_seed(seed));
        assert!(out.completed);
    }
}

/// The parallel Murphi exploration finds exactly the sequential state
/// space for arbitrary processor counts.
#[test]
fn murphi_state_count_is_stable() {
    use nowlab::apps::murphi::{sequential_explore, Murphi, MurphiParams};
    use nowlab::{RunSpec, SweepableApp};
    for procs in 1..6usize {
        let params = MurphiParams { caches: 3 };
        let (count, hash_sum) = sequential_explore(&params);
        let out = Murphi::new(params).run(&RunSpec::new(procs));
        assert!(out.completed);
        assert_eq!(out.check, hash_sum.wrapping_add(count));
    }
}

/// Message loss slows applications down but never changes their answer:
/// under a 1% drop plan, the apps complete with checksums identical to
/// the lossless run (the reliable-delivery protocol restores exactly-once,
/// in-order semantics).
#[test]
fn lossy_runs_reproduce_lossless_checksums() {
    use nowlab::apps::radix::{Radix, RadixParams};
    use nowlab::apps::sample::{Sample, SampleParams};
    use nowlab::{FaultPlan, RunSpec, SweepableApp};

    let apps: Vec<Box<dyn SweepableApp>> = vec![
        Box::new(Radix::new(RadixParams {
            total_keys: 1 << 11,
            key_bits: 16,
            digit_bits: 8,
        })),
        // Sample sort exercises barrier + broadcast back to back — the
        // pattern where a delayed barrier message once let the broadcast
        // overtake it and wedge the collective.
        Box::new(Sample::new(SampleParams::small())),
    ];
    for app in apps {
        let base = app.run(&RunSpec::new(8));
        assert!(base.completed, "{}: lossless baseline failed", app.name());
        for fault_seed in [1, 7, 4181] {
            let spec = RunSpec::new(8)
                .with_net(
                    NetConfig::berkeley_now()
                        .with_faults(FaultPlan::with_drop_rate(0.01, fault_seed)),
                )
                .with_event_limit(50_000_000)
                .with_time_limit(SimDelta::from_secs(60.0));
            let out = app.run(&spec);
            assert!(
                out.completed,
                "{} seed {fault_seed}: did not complete",
                app.name()
            );
            assert_eq!(
                out.check,
                base.check,
                "{} seed {fault_seed}: loss changed the answer",
                app.name()
            );
            assert!(
                out.runtime >= base.runtime,
                "{} seed {fault_seed}: loss made the app faster",
                app.name()
            );
        }
    }
}

/// A dead wire degrades gracefully: the run reports `completed == false`
/// at its budget (with the protocol's timeouts visible) instead of
/// hanging or panicking.
#[test]
fn permanent_outage_reports_incomplete_not_a_hang() {
    use nowlab::apps::radix::{Radix, RadixParams};
    use nowlab::{FaultPlan, Outage, RunSpec, SweepableApp};

    let app = Radix::new(RadixParams {
        total_keys: 1 << 11,
        key_bits: 16,
        digit_bits: 8,
    });
    let spec = RunSpec::new(4)
        .with_net(
            NetConfig::berkeley_now()
                .with_faults(FaultPlan::none().with_outage(Outage::permanent(SimTime::ZERO))),
        )
        .with_event_limit(2_000_000)
        .with_time_limit(SimDelta::from_secs(5.0));
    let out = app.run(&spec);
    assert!(!out.completed, "nothing can complete across a dead wire");
    assert!(
        out.stats.total_timeouts() > 0,
        "no retransmission timeouts counted"
    );
    assert_eq!(out.stats.total_drops(), out.stats.total_sends());
}

/// The dissemination barrier really synchronizes: under arbitrary
/// per-processor delays, no processor leaves barrier k before every
/// processor has entered it.
#[test]
fn barrier_synchronizes_under_random_stagger() {
    use nowlab::splitc::{run_spmd, SpmdConfig};

    let mut rng = SmallRng::seed_from_u64(0xBA221E2);
    for _ in 0..16 {
        let procs = rng.gen_range(2..9usize);
        let delays: Vec<u64> = (0..8).map(|_| rng.gen_range(0..500u64)).collect();
        let rounds = rng.gen_range(1..4usize);

        let entered: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(vec![0; rounds]));
        let violations: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        let delays = Rc::new(delays);
        let (e2, v2, d2) = (
            Rc::clone(&entered),
            Rc::clone(&violations),
            Rc::clone(&delays),
        );
        let outcome = run_spmd(&SpmdConfig::new(procs), move |ctx| {
            let entered = Rc::clone(&e2);
            let violations = Rc::clone(&v2);
            let delays = Rc::clone(&d2);
            async move {
                // NB: don't borrow inside the `for` head — scrutinee
                // temporaries live for the whole loop.
                let rounds_n = entered.borrow().len();
                for k in 0..rounds_n {
                    let d = delays[(ctx.me() + k) % delays.len()];
                    ctx.compute(SimDelta::from_micros(d as f64)).await;
                    entered.borrow_mut()[k] += 1;
                    ctx.barrier().await;
                    // Everyone must have entered round k by now.
                    if entered.borrow()[k] != ctx.procs() {
                        *violations.borrow_mut() += 1;
                    }
                }
            }
        });
        assert!(outcome.completed);
        assert_eq!(*violations.borrow(), 0, "barrier leaked");
    }
}

/// The empty node-fault plan is inert: attaching it (with any seed or
/// detector timing) leaves a run *event-identical* to the plain network —
/// same executor event count, same virtual end time, same checksum, same
/// per-processor communication counters — across random apps and sizes.
#[test]
fn inert_node_fault_plan_is_event_identical() {
    use nowlab::apps::{suite_scaled, SuiteScale};
    use nowlab::core::{NodeFaultPlan, RunSpec};
    let mut rng = SmallRng::seed_from_u64(0x1AE2);
    let apps = suite_scaled(SuiteScale::Test);
    for case in 0..8 {
        let app = &apps[rng.gen_range(0..apps.len())];
        let procs = rng.gen_range(2..5usize);
        let seed = rng.gen::<u64>();
        let spec = RunSpec::new(procs).with_seed(seed);
        let base = app.run(&spec);
        let plan = NodeFaultPlan::none().with_seed(rng.gen()).with_detector(
            SimDelta::from_micros(f64_in(&mut rng, 10.0, 200.0)),
            SimDelta::from_micros(300.0),
            SimDelta::from_micros(f64_in(&mut rng, 300.0, 5_000.0)),
        );
        let inert = app.run(&spec.with_net(NetConfig::berkeley_now().with_node_faults(plan)));
        assert_eq!(
            base.events,
            inert.events,
            "case {case} ({}, {procs}p): inert plan changed the event count",
            app.name()
        );
        assert_eq!(base.runtime, inert.runtime, "case {case}: runtime changed");
        assert_eq!(base.check, inert.check, "case {case}: checksum changed");
        assert_eq!(base.stats, inert.stats, "case {case}: comm stats changed");
        assert_eq!(
            inert.stats.total_heartbeats(),
            0,
            "case {case}: an inert plan must not emit heartbeats"
        );
    }
}
