//! Smoke tests of the `nowlab` CLI binary.

use std::process::Command;

fn nowlab(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nowlab"))
        .args(args)
        .output()
        .expect("run nowlab binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn list_names_all_ten_programs() {
    let (ok, text) = nowlab(&["list"]);
    assert!(ok);
    for name in [
        "Radix",
        "EM3D(write)",
        "EM3D(read)",
        "Sample",
        "Barnes",
        "P-Ray",
        "Murphi",
        "Connect",
        "NOW-sort",
        "Radb",
    ] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
}

#[test]
fn calibrate_reports_baseline() {
    let (ok, text) = nowlab(&["calibrate"]);
    assert!(ok, "{text}");
    assert!(text.contains("2.90"), "o mean missing: {text}");
    assert!(text.contains("5.80"), "gap missing: {text}");
}

#[test]
fn run_executes_an_app_at_test_scale() {
    let (ok, text) = nowlab(&["run", "--app", "radix", "--procs", "4", "--scale", "test"]);
    assert!(ok, "{text}");
    assert!(text.contains("Radix on 4 processors"), "{text}");
    assert!(text.contains("true"), "must complete: {text}");
}

#[test]
fn sweep_prints_a_linear_fit() {
    let (ok, text) = nowlab(&[
        "sweep", "--app", "nowsort", "--axis", "bulk", "--procs", "4", "--scale", "test",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("slowdown vs bulk bandwidth"), "{text}");
}

#[test]
fn parallel_suite_output_is_identical_to_sequential() {
    let base = &["suite", "--procs", "4", "--scale", "test"];
    let (ok, seq) = nowlab(base);
    assert!(ok, "{seq}");
    for jobs in ["2", "4"] {
        let mut args = base.to_vec();
        args.extend(["--jobs", jobs]);
        let (ok, par) = nowlab(&args);
        assert!(ok, "{par}");
        assert_eq!(par, seq, "--jobs {jobs} changed the suite table");
    }
}

#[test]
fn verify_determinism_works_with_parallel_replicas() {
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "radix",
        "--procs",
        "4",
        "--scale",
        "test",
        "--verify-determinism",
        "--jobs",
        "2",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("determinism: OK"), "{text}");
}

#[test]
fn run_with_tracing_emits_summary_and_chrome_file() {
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_trace.json");
    let path_s = path.to_str().unwrap();
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "radix",
        "--procs",
        "4",
        "--scale",
        "test",
        "--trace",
        path_s,
        "--trace-summary",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("trace summary:"), "{text}");
    assert!(text.contains("end-to-end"), "{text}");
    assert!(
        text.contains("100.0%"),
        "attribution must total 100%: {text}"
    );
    let json = std::fs::read_to_string(&path).expect("trace file written");
    let json = json.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "not JSON");
    assert!(json.contains("\"traceEvents\""), "missing traceEvents");
    assert!(json.contains("\"ph\":\"X\""), "missing complete slices");
}

#[test]
fn sweep_with_trace_summary_adds_attribution_columns() {
    let (ok, text) = nowlab(&[
        "sweep",
        "--app",
        "radix",
        "--axis",
        "overhead",
        "--procs",
        "4",
        "--scale",
        "test",
        "--trace-summary",
    ]);
    assert!(ok, "{text}");
    for col in ["% o", "% nic", "% wire", "% rxq"] {
        assert!(text.contains(col), "missing column {col}: {text}");
    }
}

#[test]
fn run_metrics_file_round_trips_through_report() {
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_metrics.json");
    let path_s = path.to_str().unwrap();
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "radix",
        "--procs",
        "4",
        "--scale",
        "test",
        "--metrics",
        path_s,
        "--metrics-summary",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("state shares"), "{text}");
    assert!(text.contains("phase table:"), "{text}");
    for phase in ["histogram", "global-hist", "distribute"] {
        assert!(text.contains(phase), "missing phase {phase}: {text}");
    }
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(
        json.contains("\"schema\":\"nowlab-metrics-report\""),
        "{json}"
    );
    assert!(json.contains("\"kind\":\"run\""), "{json}");

    // `nowlab report` must render the file without re-running anything,
    // and show exactly what the run printed inline.
    let (ok, rendered) = nowlab(&["report", path_s]);
    assert!(ok, "{rendered}");
    assert!(
        text.contains(rendered.trim_end()),
        "report output must match the inline summary:\n--- inline\n{text}\n--- report\n{rendered}"
    );
}

#[test]
fn run_metrics_summary_alone_writes_no_file() {
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "em3dwrite",
        "--procs",
        "4",
        "--scale",
        "test",
        "--metrics-summary",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("phase table:"), "{text}");
    for phase in ["e-step", "h-step"] {
        assert!(text.contains(phase), "missing phase {phase}: {text}");
    }
    assert!(!text.contains("report written"), "{text}");
}

#[test]
fn metrics_report_is_byte_identical_across_job_counts() {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let mut files = Vec::new();
    for jobs in ["1", "2", "4"] {
        let path = tmp.join(format!("cli_sweep_metrics_{jobs}.json"));
        let path_s = path.to_str().unwrap().to_string();
        let (ok, text) = nowlab(&[
            "sweep",
            "--app",
            "radix",
            "--axis",
            "overhead",
            "--procs",
            "4",
            "--scale",
            "test",
            "--metrics",
            &path_s,
            "--jobs",
            jobs,
        ]);
        assert!(ok, "{text}");
        files.push(std::fs::read(&path).expect("sweep metrics written"));
    }
    assert_eq!(files[0], files[1], "--jobs 2 changed the metrics report");
    assert_eq!(files[0], files[2], "--jobs 4 changed the metrics report");
}

#[test]
fn verify_determinism_covers_metrics_timelines() {
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "radix",
        "--procs",
        "4",
        "--scale",
        "test",
        "--metrics-summary",
        "--verify-determinism",
        "--jobs",
        "2",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("determinism: OK"), "{text}");
}

#[test]
fn sweep_with_metrics_summary_adds_per_phase_columns() {
    let (ok, text) = nowlab(&[
        "sweep",
        "--app",
        "radix",
        "--axis",
        "overhead",
        "--procs",
        "4",
        "--scale",
        "test",
        "--metrics-summary",
    ]);
    assert!(ok, "{text}");
    for col in [
        "cmp%",
        "cmp%:histogram",
        "cmp%:global-hist",
        "cmp%:distribute",
    ] {
        assert!(text.contains(col), "missing column {col}: {text}");
    }
}

#[test]
fn report_rejects_bad_input() {
    let (ok, text) = nowlab(&["report"]);
    assert!(!ok);
    assert!(text.contains("exactly one FILE.json"), "{text}");

    let (ok, text) = nowlab(&["report", "/nonexistent/metrics.json"]);
    assert!(!ok);
    assert!(text.contains("cannot read"), "{text}");

    let bad = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_not_metrics.json");
    std::fs::write(&bad, "{\"schema\":\"something-else\",\"version\":1}").unwrap();
    let (ok, text) = nowlab(&["report", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("schema"), "{text}");
}

#[test]
fn incomplete_sweep_reports_na_instead_of_panicking() {
    // Total loss: every message dropped, so no baseline can complete.
    let (ok, text) = nowlab(&[
        "sweep",
        "--app",
        "radix",
        "--axis",
        "overhead",
        "--procs",
        "4",
        "--scale",
        "test",
        "--drop-rate",
        "1.0",
    ]);
    assert!(ok, "an N/A sweep is a result, not a failure: {text}");
    assert!(text.contains("sweep N/A"), "{text}");
    assert!(text.contains("did not complete"), "{text}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, text) = nowlab(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");

    let (ok, text) = nowlab(&["run"]);
    assert!(!ok);
    assert!(text.contains("needs --app"), "{text}");

    let (ok, text) = nowlab(&["run", "--app", "nonexistent", "--scale", "test"]);
    assert!(!ok);
    assert!(text.contains("unknown app"), "{text}");

    // Knobs cannot go below the baseline.
    let (ok, text) = nowlab(&["run", "--app", "radix", "--scale", "test", "--o", "1.0"]);
    assert!(!ok);
    assert!(text.contains("below the Berkeley NOW baseline"), "{text}");

    let (ok, text) = nowlab(&["run", "--app", "radix", "--scale", "test", "--jobs", "0"]);
    assert!(!ok);
    assert!(text.contains("--jobs"), "{text}");
}

#[test]
fn crash_under_abort_policy_exits_nonzero_with_structured_note() {
    let (ok, text) = nowlab(&[
        "run", "--app", "radix", "--procs", "4", "--scale", "test", "--crash", "p1@1ms",
    ]);
    assert!(
        !ok,
        "a confirmed death under Abort must exit nonzero: {text}"
    );
    assert!(text.contains("run aborted: proc"), "{text}");
    assert!(text.contains("confirmed proc 1 dead"), "{text}");
    assert!(text.contains("detector:"), "{text}");
    // The abort is a result, not a CLI misuse — no usage dump.
    assert!(!text.contains("usage:"), "{text}");
}

#[test]
fn crash_recovery_under_continue_completes_and_exits_zero() {
    // Sample declares DegradePolicy::Continue: a crash-stop member is
    // detected, the survivors finish, and the exit code stays zero.
    let (ok, text) = nowlab(&[
        "run", "--app", "sample", "--procs", "4", "--scale", "test", "--crash", "p1@1ms",
    ]);
    assert!(ok, "{text}");
    assert!(
        text.contains("3 deaths"),
        "every survivor confirms p1: {text}"
    );
    assert!(!text.contains("run aborted"), "{text}");
}

#[test]
fn verify_determinism_holds_under_node_faults() {
    let (ok, text) = nowlab(&[
        "run",
        "--app",
        "em3dwrite",
        "--procs",
        "4",
        "--scale",
        "test",
        "--crash",
        "p1@2ms+500us",
        "--straggler",
        "p2x1.5",
        "--verify-determinism",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("determinism: OK"), "{text}");
}

#[test]
fn chaos_sweep_reports_detection_behavior() {
    let (ok, text) = nowlab(&[
        "sweep", "--app", "radix", "--axis", "chaos", "--procs", "4", "--scale", "test", "--jobs",
        "2",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("crash of p2 vs injection time"), "{text}");
    assert!(text.contains("aborted"), "{text}");
    assert!(text.contains("abort: proc"), "{text}");
}

#[test]
fn bad_node_fault_specs_fail_with_usage() {
    for (args, needle) in [
        (
            vec![
                "run", "--app", "radix", "--scale", "test", "--crash", "1@1ms",
            ],
            "want p<N>@",
        ),
        (
            vec!["run", "--app", "radix", "--scale", "test", "--crash", "p1"],
            "missing `@",
        ),
        (
            vec![
                "run", "--app", "radix", "--scale", "test", "--crash", "p1@2",
            ],
            "want a duration",
        ),
        (
            vec![
                "run",
                "--app",
                "radix",
                "--scale",
                "test",
                "--straggler",
                "p1x0.5",
            ],
            "factor must be >= 1",
        ),
        (
            vec![
                "run",
                "--app",
                "radix",
                "--scale",
                "test",
                "--crash",
                "p1@1ms",
                "--straggler",
                "p1x2.0",
            ],
            "afflicted twice",
        ),
        (
            vec![
                "run",
                "--app",
                "radix",
                "--scale",
                "test",
                "--fault-seed",
                "3",
            ],
            "has no effect",
        ),
    ] {
        let (ok, text) = nowlab(&args);
        assert!(!ok, "{args:?} must fail: {text}");
        assert!(text.contains(needle), "{args:?}: {text}");
    }
}
