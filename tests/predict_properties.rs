//! Structural properties of the happens-before message DAG.
//!
//! Four guarantees the predictor makes, checked across the benchmark
//! suite:
//!
//! 1. **Acyclicity** — the happens-before graph of every traced run is a
//!    DAG (checked constructively by `analyze`, which topologically sorts
//!    it or refuses).
//! 2. **Exact baseline critical path** — with edges priced at the run's
//!    own configuration, the weighted critical path of the measured
//!    region equals the measured runtime to the integer nanosecond, and
//!    every DAG node's longest-path time equals its recorded timestamp.
//!    `analyze` verifies both and returns an error otherwise, so these
//!    tests assert it succeeds.
//! 3. **Telescoping breakdown** — the critical-path bucket attribution
//!    sums exactly to the predicted span, at the baseline and at every
//!    re-priced grid point, mirroring the per-message telescoping law of
//!    `trace_properties.rs`.
//! 4. **Observation only** — emitting happens-before edges does not
//!    perturb the run: the outcome equals the pre-edge trace-off outcome
//!    (already covered by `traced_run_is_identical_to_untraced_run`; here
//!    we re-check the runtime/checksum/event-count triple explicitly).

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{Axis, RunSpec, TraceMode};
use nowlab::predict::{analyze, Bucket, BUCKETS};
use nowlab::NetConfig;
use nowlab_sim::SimDelta;

fn spec() -> RunSpec {
    RunSpec::new(4).with_event_limit(300_000_000)
}

/// Every app in the suite yields an acyclic DAG whose baseline critical
/// path reproduces the measured runtime exactly.
#[test]
fn baseline_critical_path_equals_measured_makespan_for_every_app() {
    for app in suite_scaled(SuiteScale::Test) {
        let spec = spec().with_trace(TraceMode::Full);
        let out = app.run(&spec);
        assert!(out.completed, "{}", app.name());
        let report = out.trace.as_ref().expect("trace requested");
        let analysis = analyze(report, &spec.net, spec.procs, out.runtime)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert_eq!(
            analysis.predict_runtime(&spec.net),
            out.runtime,
            "{}: baseline prediction must be exact",
            app.name()
        );
        assert!(analysis.node_count() > 2, "{}", app.name());
        assert!(analysis.edge_count() > 0, "{}", app.name());
    }
}

/// The critical-path bucket attribution telescopes to the predicted span
/// exactly — at the baseline and under re-priced configurations.
#[test]
fn breakdown_buckets_telescope_to_the_predicted_span() {
    for app in suite_scaled(SuiteScale::Test) {
        let spec = spec().with_trace(TraceMode::Full);
        let out = app.run(&spec);
        let report = out.trace.as_ref().expect("trace requested");
        let analysis = analyze(report, &spec.net, spec.procs, out.runtime)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let mut cfgs = vec![spec.net];
        for &desired in &[30.0, 105.0] {
            let knobs = Axis::Latency
                .knobs_for(&spec.net.machine, desired)
                .expect("latency knob");
            let mut cfg = spec.net;
            cfg.knobs = knobs;
            cfgs.push(cfg);
        }
        for cfg in &cfgs {
            let b = analysis.breakdown(cfg);
            let sum: u64 = b.buckets.iter().map(|d| d.as_nanos()).sum();
            assert_eq!(
                sum,
                b.total.as_nanos(),
                "{}: buckets must telescope",
                app.name()
            );
            let phase_sum: u64 = b.phases.iter().map(|row| row.total.as_nanos()).sum();
            assert_eq!(
                phase_sum,
                b.total.as_nanos(),
                "{}: phase rows must telescope",
                app.name()
            );
            for row in &b.phases {
                let row_sum: u64 = row.buckets.iter().map(|d| d.as_nanos()).sum();
                assert_eq!(row_sum, row.total.as_nanos(), "{}", app.name());
            }
            assert_eq!(b.buckets.len(), BUCKETS);
            assert_eq!(Bucket::all().len(), BUCKETS);
        }
        // Raising latency never speeds the region up.
        let base = analysis.predict_runtime(&spec.net);
        let slow = analysis.predict_runtime(cfgs.last().unwrap());
        assert!(slow >= base, "{}: latency cannot help", app.name());
    }
}

/// Emitting happens-before edges is pure observation: a fully-traced run
/// has the same runtime, checksum, and event count as an untraced one.
#[test]
fn edge_emission_does_not_perturb_the_run() {
    for app in suite_scaled(SuiteScale::Test) {
        let plain = app.run(&spec());
        let traced = app.run(&spec().with_trace(TraceMode::Full));
        assert_eq!(plain.runtime, traced.runtime, "{}", app.name());
        assert_eq!(plain.check, traced.check, "{}", app.name());
        assert_eq!(plain.events, traced.events, "{}", app.name());
    }
}

/// Summary-mode traces are refused with a hint rather than mispredicted,
/// and fault-injected runs are refused outright.
#[test]
fn predict_refuses_summary_and_faulty_runs() {
    let app = suite_scaled(SuiteScale::Test)
        .into_iter()
        .find(|a| a.name() == "Radix")
        .expect("radix in suite");
    let spec = spec().with_trace(TraceMode::Summary);
    let out = app.run(&spec);
    let report = out.trace.as_ref().expect("summary trace");
    let err = analyze(report, &spec.net, spec.procs, out.runtime)
        .expect_err("summary mode must be refused");
    assert!(
        err.to_string().contains("Summary mode"),
        "hint should name the mode: {err}"
    );

    let net = NetConfig::berkeley_now().with_faults(nowlab::FaultPlan::with_drop_rate(0.05, 7));
    let spec = RunSpec::new(4)
        .with_net(net)
        .with_event_limit(50_000_000)
        .with_time_limit(SimDelta::from_secs(120.0))
        .with_trace(TraceMode::Full);
    let out = app.run(&spec);
    let report = out.trace.as_ref().expect("trace requested");
    let err = analyze(report, &spec.net, spec.procs, out.runtime)
        .expect_err("faulty runs must be refused");
    assert!(
        err.to_string().contains("not predictable"),
        "refusal should explain itself: {err}"
    );
}
