//! Differential tests for the collectives crate: every algorithm variant
//! must compute exactly what the hand-rolled splitc primitives compute on
//! seeded payloads, and the full application suite must stay
//! byte-identical across worker-pool sizes with collective traffic in the
//! mix (the `--jobs` contract of `tests/parallel.rs`, extended to the
//! coll layer).

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::{sweep_jobs, Axis, SimDelta};
use nowlab::splitc::{run_spmd, CollAlgo, CollConfig, Payload, SpmdConfig};
use nowlab::RunSpec;

/// Deterministic payload generator (an LCG — simulation-visible code may
/// not touch OS entropy, and a pure function lets every processor compute
/// every peer's payload locally for verification).
fn words(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        })
        .collect()
}

/// All broadcast-forcing policies plus model-driven selection.
const BCAST_POLICIES: [CollAlgo; 4] = [
    CollAlgo::Auto,
    CollAlgo::Binomial,
    CollAlgo::Chain,
    CollAlgo::ScatterAllgather,
];

#[test]
fn every_broadcast_variant_matches_the_handrolled_tree() {
    // 6 processors (not a power of two) and a root off processor 0
    // exercise the rank-rotation paths; 768 words spans two chain
    // segments at the 4 KiB fragment grain.
    for policy in BCAST_POLICIES {
        for n in [3usize, 768] {
            let cfg = SpmdConfig::new(6).with_coll(CollConfig::forced(policy));
            let outcome = run_spmd(&cfg, move |ctx| async move {
                let root = 2;
                let data = if ctx.me() == root {
                    words(42, n)
                } else {
                    Vec::new()
                };
                let hand = ctx.broadcast_words(root, data.clone()).await;
                ctx.barrier().await;
                let coll = ctx.coll_broadcast(root, data, n).await;
                ctx.barrier().await;
                (hand == coll, coll == words(42, n))
            });
            for (i, (matches_hand, matches_seed)) in
                outcome.expect_outputs().into_iter().enumerate()
            {
                assert!(
                    matches_hand,
                    "{policy} n={n}: p{i} diverged from hand-rolled"
                );
                assert!(matches_seed, "{policy} n={n}: p{i} payload corrupted");
            }
        }
    }
}

#[test]
fn every_reduce_variant_matches_the_handrolled_reduction() {
    for policy in [CollAlgo::Auto, CollAlgo::Flat, CollAlgo::Tree] {
        let cfg = SpmdConfig::new(7).with_coll(CollConfig::forced(policy));
        let outcome = run_spmd(&cfg, move |ctx| async move {
            let mine = words(ctx.me() as u64 + 1, 1)[0];
            let hand = ctx.allreduce_sum(mine).await;
            let coll = ctx.coll_allreduce_sum(mine).await;
            // A second round must not see stale epoch state.
            let coll2 = ctx.coll_allreduce_sum(mine ^ 0xFF).await;
            (hand == coll, coll2)
        });
        let expect2: u64 = (0..7)
            .map(|p| words(p + 1, 1)[0] ^ 0xFF)
            .fold(0, u64::wrapping_add);
        for (i, (matches_hand, second)) in outcome.expect_outputs().into_iter().enumerate() {
            assert!(matches_hand, "{policy}: p{i} sum diverged from hand-rolled");
            assert_eq!(second, expect2, "{policy}: p{i} second-epoch sum wrong");
        }
    }
}

#[test]
fn every_allgather_variant_matches_broadcast_composition() {
    // The hand-rolled baseline: P successive broadcasts, one per root —
    // semantically an allgather built from the primitive splitc exposes.
    for policy in [CollAlgo::Auto, CollAlgo::Ring, CollAlgo::Direct] {
        let cfg = SpmdConfig::new(5).with_coll(CollConfig::forced(policy));
        let outcome = run_spmd(&cfg, move |ctx| async move {
            let n = 64;
            let mine = words(0x5EED + ctx.me() as u64, n);
            let mut hand: Vec<Vec<u64>> = Vec::new();
            for root in 0..ctx.procs() {
                let data = if ctx.me() == root {
                    mine.clone()
                } else {
                    Vec::new()
                };
                hand.push(ctx.broadcast_words(root, data).await);
                ctx.barrier().await;
            }
            let coll = ctx.coll_allgather(&mine).await;
            coll == hand
        });
        for (i, ok) in outcome.expect_outputs().into_iter().enumerate() {
            assert!(ok, "{policy}: p{i} allgather diverged from broadcasts");
        }
    }
}

#[test]
fn every_alltoall_variant_matches_handrolled_mailbox_exchange() {
    for policy in [CollAlgo::Auto, CollAlgo::Direct, CollAlgo::Pairwise] {
        let cfg = SpmdConfig::new(5).with_coll(CollConfig::forced(policy));
        let outcome = run_spmd(&cfg, move |ctx| async move {
            let (p, me) = (ctx.procs(), ctx.me());
            let n = 32;
            // blocks[q]: the personalized payload this processor owes q.
            let blocks: Vec<Vec<u64>> = (0..p).map(|q| words((me * p + q) as u64 + 7, n)).collect();
            // Hand-rolled exchange over mailboxes.
            let mb = ctx.alloc_mailbox();
            ctx.barrier().await;
            for off in 1..p {
                let dst = (me + off) % p;
                ctx.send_mail(
                    dst,
                    mb,
                    [me as u64, 0, 0],
                    Payload::from_words(blocks[dst].clone()),
                )
                .await;
            }
            ctx.wait_until(|| ctx.mail_len(mb) == p - 1).await;
            let mut hand: Vec<Vec<u64>> = vec![Vec::new(); p];
            hand[me] = blocks[me].clone();
            while let Some(mail) = ctx.try_recv_mail(mb) {
                hand[mail.src] = mail.payload.as_words().unwrap().to_vec();
            }
            ctx.barrier().await;
            let coll = ctx.coll_alltoall(&blocks, n).await;
            coll == hand
        });
        for (i, ok) in outcome.expect_outputs().into_iter().enumerate() {
            assert!(ok, "{policy}: p{i} all-to-all diverged from mailboxes");
        }
    }
}

/// The worker pool must stay invisible with collectives in the traffic
/// mix: the full test-scale suite, swept under both model-driven
/// selection and a forced chain broadcast, compares equal field-for-field
/// across `--jobs 1/2/4`.
#[test]
fn suite_sweep_with_collectives_is_byte_identical_across_jobs() {
    let apps = suite_scaled(SuiteScale::Test);
    for policy in [CollAlgo::Auto, CollAlgo::Chain] {
        let spec = RunSpec::new(4)
            .with_seed(11)
            .with_coll(CollConfig::forced(policy))
            .with_event_limit(50_000_000)
            .with_time_limit(SimDelta::from_secs(120.0));
        for app in &apps {
            let seq = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &[2.9, 13.0], 1);
            for jobs in [2, 4] {
                let par = sweep_jobs(app.as_ref(), &spec, Axis::Overhead, &[2.9, 13.0], jobs);
                assert_eq!(par, seq, "{} ({policy}): jobs={jobs} diverged", app.name());
            }
        }
    }
}
