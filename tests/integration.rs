//! Cross-crate integration tests: the full stack (kernel → network →
//! Split-C → applications → sweep driver) exercised through the public
//! facade.

use nowlab::apps::em3d::{Em3dParams, Em3dRead, Em3dWrite};
use nowlab::apps::nowsort::{NowSort, NowSortParams};
use nowlab::apps::radix::{Radix, RadixParams};
use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::calib::calibrate;
use nowlab::{sweep, Axis, NetConfig, RunSpec, SweepableApp};

#[test]
fn whole_suite_completes_and_is_deterministic() {
    for app in suite_scaled(SuiteScale::Test) {
        let spec = RunSpec::new(4).with_seed(11);
        let a = app.run(&spec);
        let b = app.run(&spec);
        assert!(a.completed, "{} failed", app.name());
        assert_eq!(a.check, b.check, "{}: check not reproducible", app.name());
        assert_eq!(
            a.runtime,
            b.runtime,
            "{}: virtual time not reproducible",
            app.name()
        );
        assert_eq!(
            a.stats.total_sends(),
            b.stats.total_sends(),
            "{}: message count not reproducible",
            app.name()
        );
    }
}

#[test]
fn checks_are_invariant_across_every_knob() {
    // The correctness checksum must not depend on network performance —
    // the central sanity property of the whole apparatus.
    for app in suite_scaled(SuiteScale::Test) {
        let base = app.run(&RunSpec::new(4));
        for axis in [
            Axis::Overhead,
            Axis::Gap,
            Axis::Latency,
            Axis::BulkBandwidth,
        ] {
            let values = axis.paper_values();
            let mid = values[values.len() / 2];
            let knobs = axis
                .knobs_for(&NetConfig::berkeley_now().machine, mid)
                .unwrap();
            let slowed = app.run(
                &RunSpec::new(4)
                    .with_net(NetConfig::berkeley_now().with_knobs(knobs))
                    .with_event_limit(100_000_000),
            );
            assert!(slowed.completed, "{} at {axis}={mid}", app.name());
            assert_eq!(
                base.check,
                slowed.check,
                "{}: result changed under {axis}={mid}",
                app.name()
            );
        }
    }
}

#[test]
fn overhead_hurts_chatty_apps_more_than_quiet_ones() {
    let radix = Radix::new(RadixParams::small());
    let nowsort = NowSort::new(NowSortParams::small());
    let spec = RunSpec::new(8);
    let o_values = [2.9, 23.0, 53.0];
    let r = sweep(&radix, &spec, Axis::Overhead, &o_values).expect("baseline completes");
    let n = sweep(&nowsort, &spec, Axis::Overhead, &o_values).expect("baseline completes");
    assert!(
        r.max_slowdown() > 3.0 * n.max_slowdown(),
        "radix {} vs nowsort {}",
        r.max_slowdown(),
        n.max_slowdown()
    );
}

#[test]
fn latency_hurts_readers_more_than_writers() {
    let params = Em3dParams::small();
    let spec = RunSpec::new(8);
    let l_values = [5.0, 55.0, 105.0];
    let r =
        sweep(&Em3dRead::new(params), &spec, Axis::Latency, &l_values).expect("baseline completes");
    let w = sweep(&Em3dWrite::new(params), &spec, Axis::Latency, &l_values)
        .expect("baseline completes");
    assert!(
        r.max_slowdown() > 2.0 * w.max_slowdown(),
        "read {} vs write {}",
        r.max_slowdown(),
        w.max_slowdown()
    );
}

#[test]
fn overhead_and_gap_responses_are_linear() {
    // §5.5: the headline linearity claim, at reduced scale.
    let radix = Radix::new(RadixParams::small());
    let spec = RunSpec::new(8);
    for axis in [Axis::Overhead, Axis::Gap] {
        let s = sweep(&radix, &spec, axis, &axis.paper_values()).expect("baseline completes");
        let fit = s.linearity().expect("enough points");
        assert!(
            fit.r2 > 0.98,
            "radix response to {axis} should be linear, r2={}",
            fit.r2
        );
    }
}

#[test]
fn calibration_matches_table_1_through_the_facade() {
    let c = calibrate(NetConfig::berkeley_now());
    assert!((c.o_mean_us() - 2.9).abs() < 0.1);
    assert!((c.gap_us - 5.8).abs() < 0.1);
    assert!((c.latency_us - 5.0).abs() < 0.1);
}

#[test]
fn seeds_change_workloads_but_not_structure() {
    let app = Radix::new(RadixParams::small());
    let a = app.run(&RunSpec::new(4).with_seed(1));
    let b = app.run(&RunSpec::new(4).with_seed(2));
    assert!(a.completed && b.completed);
    // Different keys => different checksum, same message volume shape.
    assert_ne!(a.check, b.check);
    let ratio = a.stats.total_sends() as f64 / b.stats.total_sends() as f64;
    assert!((ratio - 1.0).abs() < 0.05, "send volume should be stable");
}

#[test]
fn suite_handles_awkward_processor_counts() {
    // Odd and non-power-of-two P exercise block partitioning, barrier
    // rounds, and owner hashing in every application.
    for procs in [3usize, 5, 7] {
        for app in suite_scaled(SuiteScale::Test) {
            let out = app.run(&RunSpec::new(procs));
            assert!(out.completed, "{} failed on {procs} procs", app.name());
        }
    }
}

#[test]
fn two_processor_degenerate_case() {
    for app in suite_scaled(SuiteScale::Test) {
        let out = app.run(&RunSpec::new(2));
        assert!(out.completed, "{} failed on 2 procs", app.name());
    }
}
