//! Analytic models vs. measured runtimes (paper §5.1–§5.2).
//!
//! The paper validates its sensitivity predictors against the measured
//! sweeps: `r + 2mΔo` for overhead, and the better of the burst
//! (`r + mΔg`) and uniform (`r + m(g − I)`) models for gap. This suite
//! replays that comparison on two apps with opposite communication
//! characters — Radix (bursty all-to-all) and EM3D(write) (pipelined
//! stores) — and pins the observed worst-case relative error as a golden
//! bound, so any regression in either the apps or the models shows up as
//! a drift in prediction quality.

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::models::{predict_gap_burst, predict_gap_uniform, predict_overhead, rel_error};
use nowlab::core::{RunSpec, SimDelta, SweepableApp};
use nowlab::{Knobs, NetConfig};

fn app(name: &str) -> Box<dyn SweepableApp> {
    suite_scaled(SuiteScale::Test)
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("app {name} not in suite"))
}

fn spec_with(knobs: Knobs) -> RunSpec {
    RunSpec::new(4)
        .with_net(NetConfig::berkeley_now().with_knobs(knobs))
        .with_event_limit(300_000_000)
}

/// Worst-case relative error of the overhead model `r + 2mΔo` over the
/// paper's mid and far sweep points.
fn overhead_model_error(name: &str) -> f64 {
    let app = app(name);
    let base = app.run(&spec_with(Knobs::baseline()));
    assert!(base.completed, "{name} baseline");
    let m = base.stats.max_msgs_per_proc();
    let mut worst = 0.0f64;
    for desired in [13.0, 53.0] {
        let d_o = SimDelta::from_micros(desired - 2.9);
        let meas = app.run(&spec_with(Knobs::with_overhead(d_o)));
        assert!(meas.completed, "{name} at o={desired}");
        let pred = predict_overhead(base.runtime, m, d_o);
        let err = rel_error(pred, meas.runtime);
        println!(
            "{name} o={desired}: pred={pred} meas={} err={err:.4}",
            meas.runtime
        );
        worst = worst.max(err);
    }
    worst
}

/// Worst-case relative error of the gap model — the better of burst and
/// uniform, as the paper selects per application — over the paper's mid
/// and far sweep points.
fn gap_model_error(name: &str) -> f64 {
    let app = app(name);
    let base = app.run(&spec_with(Knobs::baseline()));
    assert!(base.completed, "{name} baseline");
    let m = base.stats.max_msgs_per_proc();
    let interval = SimDelta::from_micros(base.stats.msg_interval_us());
    let mut worst = 0.0f64;
    for desired in [30.0, 105.0] {
        let d_g = SimDelta::from_micros(desired - 5.8);
        let meas = app.run(&spec_with(Knobs::with_gap(d_g)));
        assert!(meas.completed, "{name} at g={desired}");
        let burst = predict_gap_burst(base.runtime, m, d_g);
        let uniform =
            predict_gap_uniform(base.runtime, m, SimDelta::from_micros(desired), interval);
        let err = rel_error(burst, meas.runtime).min(rel_error(uniform, meas.runtime));
        println!(
            "{name} g={desired}: burst={burst} uniform={uniform} meas={} err={err:.4}",
            meas.runtime
        );
        worst = worst.max(err);
    }
    worst
}

// Golden bounds: observed worst-case errors at the time of writing were
// radix Δo 0.124 / Δg 0.117 and em3d(write) Δo 0.080 / Δg 0.203 (at Test
// scale the fixed setup/barrier fraction the models ignore is larger
// than at paper scale, so errors sit above the paper's ~10%). Pinned at
// ~1.5× the observation: the simulation is deterministic, so these only
// move if the apps or the models genuinely change.

#[test]
fn radix_overhead_model_tracks_measurement() {
    let worst = overhead_model_error("Radix");
    assert!(worst < 0.19, "radix overhead model err {worst:.4}");
}

#[test]
fn radix_gap_model_tracks_measurement() {
    let worst = gap_model_error("Radix");
    assert!(worst < 0.18, "radix gap model err {worst:.4}");
}

#[test]
fn em3d_write_overhead_model_tracks_measurement() {
    let worst = overhead_model_error("EM3D(write)");
    assert!(worst < 0.12, "em3d overhead model err {worst:.4}");
}

#[test]
fn em3d_write_gap_model_tracks_measurement() {
    let worst = gap_model_error("EM3D(write)");
    assert!(worst < 0.31, "em3d gap model err {worst:.4}");
}
