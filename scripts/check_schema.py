#!/usr/bin/env python3
"""Minimal JSON Schema validator for CI (stdlib only).

Usage: check_schema.py SCHEMA.json FILE.json

Supports the subset the repo's schemas use: type (string or list),
required, properties, items, enum, minimum, minItems. Unknown keywords
are ignored, like a full validator would ignore unknown annotations.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def check(value, schema, path, errors):
    t = schema.get("type")
    if t is not None:
        wanted = t if isinstance(t, list) else [t]
        ok = False
        for name in wanted:
            py = TYPES[name]
            if isinstance(value, py) and not (
                name in ("number", "integer") and isinstance(value, bool)
            ):
                ok = True
                break
        if not ok:
            errors.append(f"{path}: expected {t}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                check(item, items, f"{path}[{i}]", errors)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    schema_path, file_path = sys.argv[1], sys.argv[2]
    with open(schema_path) as f:
        schema = json.load(f)
    with open(file_path) as f:
        value = json.load(f)
    errors = []
    check(value, schema, "$", errors)
    if errors:
        for e in errors[:50]:
            print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(f"{file_path}: {len(errors)} schema violation(s) against {schema_path}")
    print(f"{file_path}: conforms to {schema_path}")


if __name__ == "__main__":
    main()
