//! `nowlab` — command-line front end to the LogGP laboratory.
//!
//! ```text
//! nowlab list
//! nowlab calibrate [--o US] [--g US] [--l US] [--mbps MB] [--window N]
//! nowlab run   --app NAME [--procs N] [--seed S] [--scale test|benchmark]
//!              [--o US] [--g US] [--l US] [--mbps MB] [--verify-determinism]
//! nowlab sweep --app NAME --axis overhead|gap|latency|bulk [--procs N]
//! nowlab suite [--procs N] [--scale test|benchmark]
//! ```
//!
//! Knob flags give *desired absolute* parameter values (like the paper's
//! tables); omitted knobs stay at the Berkeley NOW baseline.
//!
//! Every network-taking command also accepts `--drop-rate R` (fraction of
//! messages the wire swallows, engaging the reliable-delivery protocol)
//! and `--fault-seed S` (the deterministic fault stream). Faulty runs get
//! a virtual-time deadline so total loss reports N/A instead of spinning.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::calib::{calibrate, calibrate_bulk};
use nowlab::core::report::{fmt_f, fmt_time, Table};
use nowlab::core::{
    allgather_us, alltoall_us, bcast_us, default_jobs, parallel_map, predict_app, reduce_us,
    render_report, render_report_auto, sweep_jobs, write_sweep_json, Axis, CollAlgo, CollConfig,
    FaultPlan, Knobs, MetricsMode, NetConfig, NodeFault, NodeFaultPlan, ProcState, RunMeta,
    RunOutcome, RunSpec, Selector, SimDelta, SimTime, SweepPointMeta, SweepableApp, TraceMode,
};
use nowlab::trace::chrome::{write_chrome_trace, write_chrome_trace_highlighted};

const USAGE: &str = "usage:
  nowlab list
  nowlab calibrate [--o US] [--g US] [--l US] [--mbps MB] [--window N]
  nowlab run   --app NAME [--procs N] [--seed S] [--scale test|benchmark]
               [--o US] [--g US] [--l US] [--mbps MB] [--verify-determinism]
               [--coll-algo NAME] [--trace FILE.json] [--trace-summary]
               [--metrics FILE.json] [--metrics-summary]
  nowlab sweep --app NAME --axis overhead|gap|latency|bulk|coll|chaos
               [--procs N] [--scale test|benchmark] [--coll-algo NAME]
               [--trace-summary] [--metrics FILE.json] [--metrics-summary]
  nowlab suite [--procs N] [--scale test|benchmark] [--coll-algo NAME]
  nowlab predict --app NAME [--procs N] [--seed S] [--scale test|benchmark]
               [--axis overhead|gap|latency|bulk] [--jobs N]
               [--out FILE.json] [--trace FILE.json]
  nowlab report FILE.json
parallelism (run/sweep/suite/predict):
  [--jobs N]   worker threads for independent runs (default: all cores;
               results are byte-identical to --jobs 1)
fault injection (calibrate/run/sweep/suite):
  [--drop-rate R] [--fault-seed S]   deterministic wire loss, R in [0,1]
node faults (run/sweep/suite):
  [--crash p3@2.5ms]        freeze processor 3 at t=2.5ms forever
                            (crash-stop); `p3@2.5ms+800us` resumes it
                            after 800us of downtime (crash-recovery)
  [--straggler p1x2.0]      scale processor 1's host charges by 2.0
  both take comma-separated lists; a run that confirms a peer dead under
  an aborting app exits nonzero with a structured abort note
chaos sweep:
  --axis chaos  crash one processor at increasing fractions of the
                healthy runtime and report detection/abort behavior
collectives (run/sweep/suite):
  [--coll-algo NAME]  force a collective-algorithm variant everywhere it
                      applies instead of LogGP model-driven selection
                      (auto, binomial, chain, scatter-allgather, flat,
                      tree, ring, direct, pairwise)
  --axis coll   sweep overhead while printing the selector's predicted
                per-variant decisions at each point (crossover table)
tracing (run/sweep):
  [--trace FILE.json]  per-message LogGP cost trace (Chrome trace format,
                       open in chrome://tracing or ui.perfetto.dev)
  [--trace-summary]    per-component cost attribution table
metrics (run/sweep):
  [--metrics FILE.json]  simulated-time utilization report (versioned
                         schema; render later with `nowlab report`)
  [--metrics-summary]    per-phase utilization table on stdout
prediction (predict):
  one fully traced baseline run builds the happens-before message DAG;
  slowdown curves and 5% tolerance thresholds are then re-priced
  symbolically at the paper's grid values without re-simulating
  [--out FILE.json]    versioned predict report (`nowlab report` renders
                       either schema)
  [--trace FILE.json]  Chrome trace of the baseline with critical-path
                       messages tagged with a `critical` category";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `report` takes a positional file argument, not --flags.
    if cmd == "report" {
        return match cmd_report(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list().map(|()| ExitCode::SUCCESS),
        "calibrate" => cmd_calibrate(&flags).map(|()| ExitCode::SUCCESS),
        // run/sweep pick their own exit code: a run that aborts on a
        // confirmed node death is a *result* (reported structurally),
        // not a CLI misuse, but it must still exit nonzero for CI.
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "suite" => cmd_suite(&flags).map(|()| ExitCode::SUCCESS),
        "predict" => cmd_predict(&flags).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Flags that take no value; their presence maps to `"true"`.
const BOOL_FLAGS: &[&str] = &["verify-determinism", "trace-summary", "metrics-summary"];

fn parse_flags(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

/// Worker-thread count from `--jobs` (default: the host's parallelism).
/// Zero is rejected; 1 selects the exact sequential code path.
fn jobs_of(flags: &HashMap<String, String>) -> Result<usize, String> {
    let jobs: usize = parse_or(flags, "jobs", default_jobs())?;
    if jobs == 0 {
        return Err("--jobs: want at least 1".to_string());
    }
    Ok(jobs)
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn scale_of(flags: &HashMap<String, String>) -> Result<SuiteScale, String> {
    match flags.get("scale").map(String::as_str) {
        None | Some("benchmark") => Ok(SuiteScale::Benchmark),
        Some("test") => Ok(SuiteScale::Test),
        Some(other) => Err(format!("--scale: `{other}` (want test|benchmark)")),
    }
}

/// Parses a duration like `2.5ms`, `800us`, or `0.01s` into a
/// [`SimDelta`].
fn parse_delta(s: &str) -> Result<SimDelta, String> {
    let (num, scale_us) = if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e6)
    } else {
        return Err(format!("`{s}`: want a duration like 2.5ms, 800us, 1s"));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("`{s}`: cannot parse `{num}` as a number"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("`{s}`: duration must be finite and nonnegative"));
    }
    Ok(SimDelta::from_micros(v * scale_us))
}

/// Parses one `--crash` spec: `p<N>@<TIME>` (crash-stop) or
/// `p<N>@<TIME>+<DOWNTIME>` (crash-recovery).
fn parse_crash(spec: &str) -> Result<NodeFault, String> {
    let rest = spec
        .strip_prefix('p')
        .ok_or_else(|| format!("--crash `{spec}`: want p<N>@<TIME>[+<DOWNTIME>]"))?;
    let (node, when) = rest
        .split_once('@')
        .ok_or_else(|| format!("--crash `{spec}`: missing `@<TIME>`"))?;
    let node: usize = node
        .parse()
        .map_err(|_| format!("--crash `{spec}`: bad processor id `{node}`"))?;
    match when.split_once('+') {
        None => Ok(NodeFault::crash(node, SimTime::ZERO + parse_delta(when)?)),
        Some((at, down)) => {
            let downtime = parse_delta(down)?;
            if downtime.is_zero() {
                return Err(format!("--crash `{spec}`: downtime must be positive"));
            }
            Ok(NodeFault::crash_recovery(
                node,
                SimTime::ZERO + parse_delta(at)?,
                downtime,
            ))
        }
    }
}

/// Parses one `--straggler` spec: `p<N>x<FACTOR>` with `FACTOR >= 1`.
fn parse_straggler(spec: &str) -> Result<NodeFault, String> {
    let rest = spec
        .strip_prefix('p')
        .ok_or_else(|| format!("--straggler `{spec}`: want p<N>x<FACTOR>"))?;
    let (node, factor) = rest
        .split_once('x')
        .ok_or_else(|| format!("--straggler `{spec}`: missing `x<FACTOR>`"))?;
    let node: usize = node
        .parse()
        .map_err(|_| format!("--straggler `{spec}`: bad processor id `{node}`"))?;
    let factor: f64 = factor
        .parse()
        .map_err(|_| format!("--straggler `{spec}`: bad factor `{factor}`"))?;
    if !(factor.is_finite() && factor >= 1.0) {
        return Err(format!(
            "--straggler `{spec}`: factor must be >= 1 (a node cannot be faster than healthy)"
        ));
    }
    Ok(NodeFault::straggler(node, factor))
}

/// Builds the node-fault plan from `--crash` / `--straggler`
/// (comma-separated specs) and the shared `--fault-seed`.
fn node_faults_of(flags: &HashMap<String, String>) -> Result<NodeFaultPlan, String> {
    let mut faults = Vec::new();
    if let Some(specs) = flags.get("crash") {
        for spec in specs.split(',') {
            faults.push(parse_crash(spec.trim())?);
        }
    }
    if let Some(specs) = flags.get("straggler") {
        for spec in specs.split(',') {
            faults.push(parse_straggler(spec.trim())?);
        }
    }
    if faults.len() > nowlab::am::MAX_NODE_FAULTS {
        return Err(format!(
            "at most {} node faults per run (got {})",
            nowlab::am::MAX_NODE_FAULTS,
            faults.len()
        ));
    }
    let mut plan = NodeFaultPlan::none().with_seed(parse_or(flags, "fault-seed", 1u64)?);
    for f in faults {
        if plan.fault_of(f.node).is_some() {
            return Err(format!("node p{} afflicted twice", f.node));
        }
        plan = plan.with_fault(f);
    }
    Ok(plan)
}

/// Builds a network config from desired absolute knob values.
fn net_of(flags: &HashMap<String, String>) -> Result<NetConfig, String> {
    let mut cfg = NetConfig::berkeley_now();
    if let Some(w) = flags.get("window") {
        let w: u32 = w
            .parse()
            .map_err(|_| "--window: not a number".to_string())?;
        cfg = cfg.with_window(w);
    }
    let mut knobs = Knobs::baseline();
    let apply = |axis: Axis, flag: &str, knobs: &mut Knobs| -> Result<(), String> {
        if let Some(v) = flags.get(flag) {
            let v: f64 = v
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse `{v}`"))?;
            let k = axis
                .knobs_for(&NetConfig::berkeley_now().machine, v)
                .ok_or(format!(
                    "--{flag} {v}: below the Berkeley NOW baseline (the apparatus only slows down)"
                ))?;
            match axis {
                Axis::Overhead | Axis::Coll => knobs.d_o = k.d_o,
                Axis::Gap => knobs.d_g = k.d_g,
                Axis::Latency => knobs.d_lat = k.d_lat,
                Axis::BulkBandwidth => knobs.d_gap_per_byte = k.d_gap_per_byte,
            }
        }
        Ok(())
    };
    apply(Axis::Overhead, "o", &mut knobs)?;
    apply(Axis::Gap, "g", &mut knobs)?;
    apply(Axis::Latency, "l", &mut knobs)?;
    apply(Axis::BulkBandwidth, "mbps", &mut knobs)?;
    let rate: f64 = parse_or(flags, "drop-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--drop-rate {rate}: want a fraction in [0, 1]"));
    }
    let node_plan = node_faults_of(flags)?;
    if node_plan.is_active() {
        cfg = cfg.with_node_faults(node_plan);
    }
    if rate > 0.0 {
        let seed: u64 = parse_or(flags, "fault-seed", 1)?;
        cfg = cfg.with_faults(FaultPlan::with_drop_rate(rate, seed));
    } else if flags.contains_key("fault-seed") && !node_plan.is_active() {
        return Err(
            "--fault-seed without --drop-rate/--crash/--straggler has no effect".to_string(),
        );
    }
    Ok(cfg.with_knobs(knobs))
}

/// Collective-algorithm policy from `--coll-algo` (absent means
/// model-driven selection).
fn coll_of(flags: &HashMap<String, String>) -> Result<CollConfig, String> {
    match flags.get("coll-algo") {
        None => Ok(CollConfig::default()),
        Some(name) => {
            let algo: CollAlgo = name.parse().map_err(|e| format!("--coll-algo: {e}"))?;
            Ok(CollConfig::forced(algo))
        }
    }
}

/// Virtual-time deadline for runs on a faulty wire: 120 simulated seconds,
/// far beyond any healthy run in the suite.
const FAULTY_RUN_DEADLINE: SimDelta = SimDelta::from_micros_int(120_000_000);

/// Attaches livelock guards to `spec`: always an event budget, plus a
/// virtual-time deadline when the wire is faulty (retransmission backoff
/// never gives up on its own, so only a limit turns total loss into N/A).
fn guard(spec: RunSpec) -> RunSpec {
    let spec = spec.with_event_limit(300_000_000);
    if spec.net.faults.is_active() || spec.net.node_faults.is_active() {
        spec.with_time_limit(FAULTY_RUN_DEADLINE)
    } else {
        spec
    }
}

fn find_app(scale: SuiteScale, name: &str) -> Result<Box<dyn SweepableApp>, String> {
    // Normalize to lowercase alphanumerics: "NOW-sort" == "nowsort",
    // "EM3D(write)" == "em3dwrite".
    let norm = |s: &str| -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = norm(name);
    for app in suite_scaled(scale) {
        if norm(app.name()) == wanted {
            return Ok(app);
        }
    }
    Err(format!(
        "unknown app `{name}` (try `nowlab list`; names like radix, em3dwrite, nowsort)"
    ))
}

fn cmd_list() -> Result<(), String> {
    println!("applications (paper Table 3):");
    for app in suite_scaled(SuiteScale::Benchmark) {
        println!("  {}", app.name());
    }
    println!("\naxes: overhead, gap, latency, bulk, coll, chaos");
    Ok(())
}

fn cmd_calibrate(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = net_of(flags)?;
    println!("configuration: {cfg}");
    let c = calibrate(cfg);
    let bw = calibrate_bulk(cfg);
    let mut t = Table::new(
        "calibration (LogP signature microbenchmarks)",
        &[
            "o (us)",
            "o_send",
            "o_recv",
            "g (us)",
            "L (us)",
            "bulk MB/s",
        ],
    );
    t.push_row([
        fmt_f(c.o_mean_us(), 2),
        fmt_f(c.o_send_us, 2),
        fmt_f(c.o_recv_us, 2),
        fmt_f(c.gap_us, 2),
        fmt_f(c.latency_us, 2),
        fmt_f(bw, 1),
    ]);
    println!("{t}");
    Ok(())
}

/// Tracing mode from `--trace` / `--trace-summary`: a Chrome-trace export
/// needs full per-message records; a summary alone gets the bounded-memory
/// aggregation mode.
fn trace_mode_of(flags: &HashMap<String, String>) -> TraceMode {
    if flags.contains_key("trace") {
        TraceMode::Full
    } else if flags.contains_key("trace-summary") {
        TraceMode::Summary
    } else {
        TraceMode::Off
    }
}

/// Metrics mode from `--metrics` / `--metrics-summary`: either form of
/// output needs the recorder attached.
fn metrics_mode_of(flags: &HashMap<String, String>) -> MetricsMode {
    if flags.contains_key("metrics") || flags.contains_key("metrics-summary") {
        MetricsMode::On
    } else {
        MetricsMode::Off
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let name = flags.get("app").ok_or("run needs --app")?;
    let app = find_app(scale_of(flags)?, name)?;
    let spec = guard(
        RunSpec::new(parse_or(flags, "procs", 32usize)?)
            .with_net(net_of(flags)?)
            .with_seed(parse_or(flags, "seed", 1u64)?)
            .with_coll(coll_of(flags)?)
            .with_trace(trace_mode_of(flags))
            .with_metrics(metrics_mode_of(flags)),
    );
    let jobs = jobs_of(flags)?;
    let verify = flags.contains_key("verify-determinism");
    // With --jobs > 1 the determinism double-run executes both replicas
    // concurrently — a sharper test than back-to-back runs, since the
    // replicas race each other in wall time yet must agree in virtual time.
    let mut replica = if verify && jobs > 1 {
        let mut runs = parallel_map(2, &[(), ()], |_, _| app.run(&spec));
        let second = runs.pop();
        (runs.pop(), second)
    } else {
        (Some(app.run(&spec)), None)
    };
    let out = replica.0.take().expect("first replica always present");
    let mut t = Table::new(
        format!("{} on {} processors", app.name(), spec.procs),
        &[
            "runtime",
            "completed",
            "msg/proc",
            "interval us",
            "% bulk",
            "% reads",
            "balance",
            "check",
        ],
    );
    t.push_row([
        fmt_time(out.runtime),
        out.completed.to_string(),
        fmt_f(out.stats.avg_msgs_per_proc(), 0),
        fmt_f(out.stats.msg_interval_us(), 1),
        fmt_f(out.stats.pct_bulk(), 1),
        fmt_f(out.stats.pct_reads(), 1),
        fmt_f(out.stats.balance(), 2),
        format!("{:016x}", out.check),
    ]);
    println!("{t}");
    if spec.net.reliability_active() {
        println!(
            "faults: {} drops, {} dups, {} retransmits, {} timeouts, max backoff {}",
            out.stats.total_drops(),
            out.stats.total_dups(),
            out.stats.total_retransmits(),
            out.stats.total_timeouts(),
            fmt_time(out.stats.max_retry_backoff()),
        );
    }
    if spec.net.node_faults.is_active() {
        println!(
            "detector: {} heartbeats, {} suspicions ({} false), {} deaths, max detect latency {}",
            out.stats.total_heartbeats(),
            out.stats.total_suspicions(),
            out.stats.total_false_suspicions(),
            out.stats.total_peer_deaths(),
            fmt_time(out.stats.max_detect_latency()),
        );
    }
    if let Some(report) = &out.trace {
        if flags.contains_key("trace-summary") {
            println!("{}", report.summary.render());
        }
        if let Some(path) = flags.get("trace") {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("--trace {path}: cannot create: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            let drawn = write_chrome_trace(&report.records, &mut w)
                .map_err(|e| format!("--trace {path}: write failed: {e}"))?;
            println!(
                "trace: {drawn} message lifetimes ({} records) written to {path}",
                report.records.len()
            );
        }
    }
    if let Some(report) = &out.metrics {
        // One serialization serves both outputs: the file is the JSON
        // bytes, and the summary is rendered *from* those bytes, so what
        // `nowlab report` shows later is exactly what stdout showed.
        let meta = RunMeta {
            app: app.name(),
            procs: spec.procs,
            seed: spec.seed,
        };
        let mut buf = Vec::new();
        report
            .write_json(&meta, &mut buf)
            .map_err(|e| format!("metrics serialization failed: {e}"))?;
        let json = String::from_utf8(buf).expect("report JSON is ASCII");
        if flags.contains_key("metrics-summary") {
            println!("{}", render_report(&json)?);
        }
        if let Some(path) = flags.get("metrics") {
            std::fs::write(path, &json)
                .map_err(|e| format!("--metrics {path}: cannot write: {e}"))?;
            println!("metrics: report written to {path} (render with `nowlab report {path}`)");
        }
    }
    if verify {
        // Re-run the identical spec and diff everything observable. Virtual
        // time is a pure function of (program, seed), so any inequality
        // here is a determinism bug in the stack below.
        let out2 = replica.1.take().unwrap_or_else(|| app.run(&spec));
        let mut diffs = Vec::new();
        if out.check != out2.check {
            diffs.push(format!("check {:016x} vs {:016x}", out.check, out2.check));
        }
        if out.runtime != out2.runtime {
            diffs.push(format!(
                "runtime {} vs {}",
                fmt_time(out.runtime),
                fmt_time(out2.runtime)
            ));
        }
        if out.completed != out2.completed {
            diffs.push(format!("completed {} vs {}", out.completed, out2.completed));
        }
        if out.stats != out2.stats {
            diffs.push("per-processor communication stats differ".to_string());
        }
        if out.metrics != out2.metrics {
            diffs.push("metrics timelines differ".to_string());
        }
        if diffs.is_empty() {
            println!(
                "determinism: OK — two runs with seed {} are bit-identical \
                 (runtime, checksum, and all communication counters)",
                spec.seed
            );
        } else {
            return Err(format!("determinism violation: {}", diffs.join("; ")));
        }
    }
    if let Some(note) = out.abort {
        eprintln!("run aborted: {note}");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let name = flags.get("app").ok_or("sweep needs --app")?;
    let app = find_app(scale_of(flags)?, name)?;
    let axis_flag = flags
        .get("axis")
        .ok_or("sweep needs --axis")?
        .to_ascii_lowercase();
    // The chaos axis perturbs *when a processor dies*, not a LogGP
    // parameter, so it gets a dedicated driver instead of Axis knobs.
    if axis_flag == "chaos" {
        return cmd_sweep_chaos(flags, app.as_ref());
    }
    let axis = match axis_flag.as_str() {
        "overhead" | "o" => Axis::Overhead,
        "gap" | "g" => Axis::Gap,
        "latency" | "l" => Axis::Latency,
        "bulk" | "bandwidth" | "mbps" => Axis::BulkBandwidth,
        "coll" | "collectives" => Axis::Coll,
        other => return Err(format!("--axis: `{other}`")),
    };
    let tracing = flags.contains_key("trace-summary");
    let metering = metrics_mode_of(flags);
    let spec = guard(
        RunSpec::new(parse_or(flags, "procs", 32usize)?)
            .with_net(net_of(flags)?)
            .with_coll(coll_of(flags)?)
            .with_trace(if tracing {
                TraceMode::Summary
            } else {
                TraceMode::Off
            })
            .with_metrics(metering),
    );
    let values = axis.paper_values();
    let result = match sweep_jobs(app.as_ref(), &spec, axis, &values, jobs_of(flags)?) {
        Ok(s) => s,
        Err(e) => {
            // A sweep without a usable baseline is a legitimate scientific
            // outcome (the paper's N/A entries), not a CLI misuse: report
            // it structurally and exit cleanly.
            println!("sweep N/A — {e}");
            return Ok(ExitCode::SUCCESS);
        }
    };
    let faulty = spec.net.faults.is_active();
    let mut headers = vec![axis.label(), "runtime", "slowdown"];
    if faulty {
        headers.extend(["drops", "retx", "timeouts"]);
    }
    if tracing {
        headers.extend(["% o", "% nic", "% wire", "% rxq"]);
    }
    // Per-phase utilization columns: overall compute share, then one
    // column per application phase (phase names come from the first
    // metered point; SPMD phase structure is identical across points).
    let phase_names: Vec<String> = if metering == MetricsMode::On {
        result
            .points
            .iter()
            .find_map(|p| p.metrics.as_ref())
            .map(|s| s.phases.iter().map(|ph| ph.name.clone()).collect())
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    let mut owned_headers: Vec<String> = Vec::new();
    if metering == MetricsMode::On {
        owned_headers.push("cmp%".to_string());
        for name in &phase_names {
            owned_headers.push(format!("cmp%:{name}"));
        }
        headers.extend(owned_headers.iter().map(String::as_str));
    }
    let mut t = Table::new(
        format!("{}: slowdown vs {axis} ({} procs)", result.app, spec.procs),
        &headers,
    );
    for p in &result.points {
        let mut row = vec![
            fmt_f(p.desired, 1),
            fmt_time(p.runtime),
            if p.completed {
                fmt_f(p.slowdown, 2)
            } else {
                "N/A".into()
            },
        ];
        if faulty {
            row.extend([
                p.drops.to_string(),
                p.retransmits.to_string(),
                p.timeouts.to_string(),
            ]);
        }
        if tracing {
            // Per-axis attribution: where each message's end-to-end time
            // went at this sweep point (overhead, NIC, wire, rx queueing).
            match &p.trace {
                Some(s) => row.extend([
                    fmt_f(100.0 * s.share_overhead(), 1),
                    fmt_f(100.0 * s.share_nic(), 1),
                    fmt_f(100.0 * s.share_wire(), 1),
                    fmt_f(100.0 * s.share_rx_queue(), 1),
                ]),
                None => row.extend(["-".into(), "-".into(), "-".into(), "-".into()]),
            }
        }
        if metering == MetricsMode::On {
            match &p.metrics {
                Some(s) => {
                    row.push(fmt_f(100.0 * s.share(ProcState::Compute), 1));
                    for name in &phase_names {
                        let cell = s
                            .phases
                            .iter()
                            .find(|ph| &ph.name == name)
                            .map(|ph| fmt_f(100.0 * ph.share(ProcState::Compute), 1))
                            .unwrap_or_else(|| "-".into());
                        row.push(cell);
                    }
                }
                None => row.extend((0..1 + phase_names.len()).map(|_| "-".to_string())),
            }
        }
        t.push_row(row);
    }
    println!("{t}");
    if axis == Axis::Coll {
        print_coll_decisions(&spec, axis, &values)?;
    }
    if let Some(path) = flags.get("metrics") {
        let metas: Vec<SweepPointMeta<'_>> = result
            .points
            .iter()
            .filter_map(|p| {
                p.metrics.as_ref().map(|s| SweepPointMeta {
                    x: p.desired,
                    runtime_ns: p.runtime.as_nanos(),
                    slowdown: p.slowdown,
                    summary: s,
                })
            })
            .collect();
        let mut buf = Vec::new();
        write_sweep_json(&result.app, axis.label(), spec.procs, &metas, &mut buf)
            .map_err(|e| format!("metrics serialization failed: {e}"))?;
        std::fs::write(path, &buf).map_err(|e| format!("--metrics {path}: cannot write: {e}"))?;
        println!("metrics: sweep report written to {path} (render with `nowlab report {path}`)");
    }
    if let Some(fit) = result.linearity() {
        println!(
            "linear fit: slowdown ≈ {:.4}·x + {:.2}   (R² = {:.4})",
            fit.slope, fit.intercept, fit.r2
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Payload used for the `--axis coll` selector-decision table: 16 KiB sits
/// where the sweep itself moves a winner — the broadcast flips from the
/// bandwidth-optimal scatter-allgather to the message-frugal binomial tree
/// between o = 13 and o = 23 µs (see EXPERIMENTS.md §collective
/// crossovers), while the gathers stay with the direct exchange whose
/// overlapped incast the conformance suite shows is measured-cheapest
/// across the whole axis at this cluster size.
const COLL_TABLE_BYTES: u64 = 16 * 1024;

/// Prints the LogGP selector's predicted choice (and predicted completion
/// time) for each collective family at every swept overhead point, so the
/// crossover from bandwidth-friendly to message-frugal variants is visible
/// next to the measured slowdown table.
fn print_coll_decisions(spec: &RunSpec, axis: Axis, values: &[f64]) -> Result<(), String> {
    let procs = spec.procs;
    let bytes = COLL_TABLE_BYTES;
    let mut t = Table::new(
        format!(
            "model-selected variants vs overhead ({procs} procs, {bytes}-byte payloads, \
             policy {})",
            spec.coll.algo
        ),
        &[
            "o (us)",
            "bcast",
            "us",
            "reduce",
            "us",
            "allgather",
            "us",
            "all-to-all",
            "us",
        ],
    );
    for &v in values {
        let Some(knobs) = axis.knobs_for(&spec.net.machine, v) else {
            continue;
        };
        let net = spec.net.with_knobs(knobs);
        let sel = Selector::new(net, procs, spec.coll);
        let b = sel.broadcast(bytes);
        let r = sel.reduce();
        let g = sel.allgather(bytes);
        let a = sel.alltoall(bytes);
        t.push_row([
            fmt_f(v, 1),
            b.to_string(),
            fmt_f(bcast_us(&net, b, procs, bytes), 1),
            r.to_string(),
            fmt_f(reduce_us(&net, r, procs), 1),
            g.to_string(),
            fmt_f(allgather_us(&net, g, procs, bytes), 1),
            a.to_string(),
            fmt_f(alltoall_us(&net, a, procs, bytes), 1),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// Crash times swept by `--axis chaos`, as fractions of the healthy
/// runtime.
const CHAOS_FRACTIONS: [f64; 4] = [0.125, 0.25, 0.5, 0.75];

/// The `--axis chaos` driver: measure the healthy run, then re-run it
/// with one processor (the middle one) crash-stopping at increasing
/// fractions of that runtime, reporting how the failure detector and the
/// app's degrade policy respond at each point.
fn cmd_sweep_chaos(
    flags: &HashMap<String, String>,
    app: &dyn SweepableApp,
) -> Result<ExitCode, String> {
    let procs: usize = parse_or(flags, "procs", 32usize)?;
    if procs < 2 {
        return Err("--axis chaos needs at least 2 processors".to_string());
    }
    let net = net_of(flags)?;
    if net.node_faults.is_active() {
        return Err("--axis chaos schedules its own crashes; drop --crash/--straggler".to_string());
    }
    let seed: u64 = parse_or(flags, "seed", 1u64)?;
    let fault_seed: u64 = parse_or(flags, "fault-seed", 1u64)?;
    let baseline_spec = guard(RunSpec::new(procs).with_net(net).with_seed(seed));
    let baseline = app.run(&baseline_spec);
    if !baseline.completed {
        println!("sweep N/A — the healthy baseline run did not complete");
        return Ok(ExitCode::SUCCESS);
    }
    let victim = procs / 2;
    let specs: Vec<(f64, RunSpec)> = CHAOS_FRACTIONS
        .iter()
        .map(|&f| {
            let at = SimTime::ZERO
                + SimDelta::from_nanos((f * baseline.runtime.as_nanos() as f64) as u64);
            let plan = NodeFaultPlan::none()
                .with_seed(fault_seed)
                .with_fault(NodeFault::crash(victim, at));
            (
                f,
                guard(
                    RunSpec::new(procs)
                        .with_net(net.with_node_faults(plan))
                        .with_seed(seed),
                ),
            )
        })
        .collect();
    let outs: Vec<RunOutcome> = parallel_map(jobs_of(flags)?, &specs, |_, (_, spec)| app.run(spec));
    let mut t = Table::new(
        format!(
            "{}: crash of p{victim} vs injection time ({procs} procs, healthy runtime {})",
            app.name(),
            fmt_time(baseline.runtime)
        ),
        &[
            "crash at",
            "runtime",
            "outcome",
            "completers",
            "deaths",
            "suspicions",
            "detect max",
        ],
    );
    let mut aborts = Vec::new();
    for ((f, spec), out) in specs.iter().zip(&outs) {
        let outcome = if let Some(note) = out.abort {
            aborts.push(note);
            "aborted"
        } else if out.completed {
            "completed"
        } else {
            "N/A"
        };
        let crash_at = spec
            .net
            .node_faults
            .fault_of(victim)
            .expect("chaos spec afflicts the victim")
            .crash_at;
        t.push_row([
            format!(
                "{} ({:.0}%)",
                fmt_time(crash_at.since(SimTime::ZERO)),
                f * 100.0
            ),
            fmt_time(out.runtime),
            outcome.to_string(),
            format!("{}/{}", out.completers, procs),
            out.stats.total_peer_deaths().to_string(),
            out.stats.total_suspicions().to_string(),
            fmt_time(out.stats.max_detect_latency()),
        ]);
    }
    println!("{t}");
    for note in aborts {
        println!("abort: {note}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders a previously written metrics report (run or sweep) without
/// re-running anything.
fn cmd_report(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("report needs exactly one FILE.json argument".to_string());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("report {path}: cannot read: {e}"))?;
    println!("{}", render_report_auto(&text)?);
    Ok(())
}

/// The `predict` driver: one fully traced baseline run, then symbolic
/// re-pricing of its happens-before DAG at every paper grid value — no
/// re-simulation (DESIGN.md §13).
fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("app").ok_or("predict needs --app")?;
    let app = find_app(scale_of(flags)?, name)?;
    let axes: Vec<Axis> = match flags.get("axis").map(String::as_str) {
        None => vec![
            Axis::Overhead,
            Axis::Gap,
            Axis::Latency,
            Axis::BulkBandwidth,
        ],
        Some("overhead" | "o") => vec![Axis::Overhead],
        Some("gap" | "g") => vec![Axis::Gap],
        Some("latency" | "l") => vec![Axis::Latency],
        Some("bulk" | "bandwidth" | "mbps") => vec![Axis::BulkBandwidth],
        Some(other) => {
            return Err(format!(
                "--axis: `{other}` (want overhead|gap|latency|bulk)"
            ));
        }
    };
    let spec = guard(
        RunSpec::new(parse_or(flags, "procs", 32usize)?)
            .with_net(net_of(flags)?)
            .with_seed(parse_or(flags, "seed", 1u64)?)
            .with_coll(coll_of(flags)?),
    );
    let p = predict_app(app.as_ref(), &spec, &axes, jobs_of(flags)?)?;
    println!("{}", p.render());
    if let Some(path) = flags.get("out") {
        let mut buf = Vec::new();
        p.write_json(&mut buf)
            .map_err(|e| format!("predict serialization failed: {e}"))?;
        std::fs::write(path, &buf).map_err(|e| format!("--out {path}: cannot write: {e}"))?;
        println!("\npredict: report written to {path} (render with `nowlab report {path}`)");
    }
    if let Some(path) = flags.get("trace") {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("--trace {path}: cannot create: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        let drawn =
            write_chrome_trace_highlighted(&p.trace.records, &p.breakdown.critical_msgs, &mut w)
                .map_err(|e| format!("--trace {path}: write failed: {e}"))?;
        println!(
            "\ntrace: {drawn} message lifetimes written to {path} \
             ({} on the critical path tagged `critical`)",
            p.breakdown.critical_msgs.len()
        );
    }
    Ok(())
}

fn cmd_suite(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let procs = parse_or(flags, "procs", 32usize)?;
    let mut t = Table::new(
        format!("benchmark suite on {procs} processors"),
        &[
            "program",
            "runtime",
            "msg/proc",
            "interval us",
            "% bulk",
            "% reads",
        ],
    );
    let spec = guard(
        RunSpec::new(procs)
            .with_net(net_of(flags)?)
            .with_coll(coll_of(flags)?),
    );
    let apps = suite_scaled(scale);
    // Whole apps are independent runs; fan them out and print in suite
    // order (results are collected by index, so the table is identical to
    // --jobs 1).
    let outs = parallel_map(jobs_of(flags)?, &apps, |_, app| app.run(&spec));
    for (app, out) in apps.iter().zip(outs) {
        t.push_row([
            app.name().to_string(),
            if out.completed {
                fmt_time(out.runtime)
            } else {
                "N/A".into()
            },
            fmt_f(out.stats.avg_msgs_per_proc(), 0),
            fmt_f(out.stats.msg_interval_us(), 1),
            fmt_f(out.stats.pct_bulk(), 1),
            fmt_f(out.stats.pct_reads(), 1),
        ]);
    }
    println!("{t}");
    Ok(())
}
