//! `nowlab` — command-line front end to the LogGP laboratory.
//!
//! ```text
//! nowlab list
//! nowlab calibrate [--o US] [--g US] [--l US] [--mbps MB] [--window N]
//! nowlab run   --app NAME [--procs N] [--seed S] [--scale test|benchmark]
//!              [--o US] [--g US] [--l US] [--mbps MB]
//! nowlab sweep --app NAME --axis overhead|gap|latency|bulk [--procs N]
//! nowlab suite [--procs N] [--scale test|benchmark]
//! ```
//!
//! Knob flags give *desired absolute* parameter values (like the paper's
//! tables); omitted knobs stay at the Berkeley NOW baseline.

use std::collections::HashMap;
use std::process::ExitCode;

use nowlab::apps::{suite_scaled, SuiteScale};
use nowlab::core::calib::{calibrate, calibrate_bulk};
use nowlab::core::report::{fmt_f, fmt_time, Table};
use nowlab::core::{sweep, Axis, Knobs, NetConfig, RunSpec, SweepableApp};

const USAGE: &str = "usage:
  nowlab list
  nowlab calibrate [--o US] [--g US] [--l US] [--mbps MB] [--window N]
  nowlab run   --app NAME [--procs N] [--seed S] [--scale test|benchmark]
               [--o US] [--g US] [--l US] [--mbps MB]
  nowlab sweep --app NAME --axis overhead|gap|latency|bulk [--procs N]
               [--scale test|benchmark]
  nowlab suite [--procs N] [--scale test|benchmark]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "calibrate" => cmd_calibrate(&flags),
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "suite" => cmd_suite(&flags),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse `{v}`")),
    }
}

fn scale_of(flags: &HashMap<String, String>) -> Result<SuiteScale, String> {
    match flags.get("scale").map(String::as_str) {
        None | Some("benchmark") => Ok(SuiteScale::Benchmark),
        Some("test") => Ok(SuiteScale::Test),
        Some(other) => Err(format!("--scale: `{other}` (want test|benchmark)")),
    }
}

/// Builds a network config from desired absolute knob values.
fn net_of(flags: &HashMap<String, String>) -> Result<NetConfig, String> {
    let mut cfg = NetConfig::berkeley_now();
    if let Some(w) = flags.get("window") {
        let w: u32 = w.parse().map_err(|_| "--window: not a number".to_string())?;
        cfg = cfg.with_window(w);
    }
    let mut knobs = Knobs::baseline();
    let apply = |axis: Axis, flag: &str, knobs: &mut Knobs| -> Result<(), String> {
        if let Some(v) = flags.get(flag) {
            let v: f64 = v
                .parse()
                .map_err(|_| format!("--{flag}: cannot parse `{v}`"))?;
            let k = axis.knobs_for(&NetConfig::berkeley_now().machine, v).ok_or(
                format!("--{flag} {v}: below the Berkeley NOW baseline (the apparatus only slows down)"),
            )?;
            match axis {
                Axis::Overhead => knobs.d_o = k.d_o,
                Axis::Gap => knobs.d_g = k.d_g,
                Axis::Latency => knobs.d_lat = k.d_lat,
                Axis::BulkBandwidth => knobs.d_gap_per_byte = k.d_gap_per_byte,
            }
        }
        Ok(())
    };
    apply(Axis::Overhead, "o", &mut knobs)?;
    apply(Axis::Gap, "g", &mut knobs)?;
    apply(Axis::Latency, "l", &mut knobs)?;
    apply(Axis::BulkBandwidth, "mbps", &mut knobs)?;
    Ok(cfg.with_knobs(knobs))
}

fn find_app(scale: SuiteScale, name: &str) -> Result<Box<dyn SweepableApp>, String> {
    // Normalize to lowercase alphanumerics: "NOW-sort" == "nowsort",
    // "EM3D(write)" == "em3dwrite".
    let norm = |s: &str| -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = norm(name);
    for app in suite_scaled(scale) {
        if norm(app.name()) == wanted {
            return Ok(app);
        }
    }
    Err(format!(
        "unknown app `{name}` (try `nowlab list`; names like radix, em3dwrite, nowsort)"
    ))
}

fn cmd_list() -> Result<(), String> {
    println!("applications (paper Table 3):");
    for app in suite_scaled(SuiteScale::Benchmark) {
        println!("  {}", app.name());
    }
    println!("\naxes: overhead, gap, latency, bulk");
    Ok(())
}

fn cmd_calibrate(flags: &HashMap<String, String>) -> Result<(), String> {
    let cfg = net_of(flags)?;
    println!("configuration: {cfg}");
    let c = calibrate(cfg);
    let bw = calibrate_bulk(cfg);
    let mut t = Table::new(
        "calibration (LogP signature microbenchmarks)",
        &["o (us)", "o_send", "o_recv", "g (us)", "L (us)", "bulk MB/s"],
    );
    t.push_row([
        fmt_f(c.o_mean_us(), 2),
        fmt_f(c.o_send_us, 2),
        fmt_f(c.o_recv_us, 2),
        fmt_f(c.gap_us, 2),
        fmt_f(c.latency_us, 2),
        fmt_f(bw, 1),
    ]);
    println!("{t}");
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("app").ok_or("run needs --app")?;
    let app = find_app(scale_of(flags)?, name)?;
    let spec = RunSpec::new(parse_or(flags, "procs", 32usize)?)
        .with_net(net_of(flags)?)
        .with_seed(parse_or(flags, "seed", 1u64)?)
        .with_event_limit(300_000_000);
    let out = app.run(&spec);
    let mut t = Table::new(
        format!("{} on {} processors", app.name(), spec.procs),
        &[
            "runtime",
            "completed",
            "msg/proc",
            "interval us",
            "% bulk",
            "% reads",
            "balance",
            "check",
        ],
    );
    t.push_row([
        fmt_time(out.runtime),
        out.completed.to_string(),
        fmt_f(out.stats.avg_msgs_per_proc(), 0),
        fmt_f(out.stats.msg_interval_us(), 1),
        fmt_f(out.stats.pct_bulk(), 1),
        fmt_f(out.stats.pct_reads(), 1),
        fmt_f(out.stats.balance(), 2),
        format!("{:016x}", out.check),
    ]);
    println!("{t}");
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("app").ok_or("sweep needs --app")?;
    let app = find_app(scale_of(flags)?, name)?;
    let axis = match flags
        .get("axis")
        .ok_or("sweep needs --axis")?
        .to_ascii_lowercase()
        .as_str()
    {
        "overhead" | "o" => Axis::Overhead,
        "gap" | "g" => Axis::Gap,
        "latency" | "l" => Axis::Latency,
        "bulk" | "bandwidth" | "mbps" => Axis::BulkBandwidth,
        other => return Err(format!("--axis: `{other}`")),
    };
    let spec = RunSpec::new(parse_or(flags, "procs", 32usize)?).with_event_limit(300_000_000);
    let values = axis.paper_values();
    let result = sweep(app.as_ref(), &spec, axis, &values);
    let mut t = Table::new(
        format!("{}: slowdown vs {axis} ({} procs)", result.app, spec.procs),
        &[axis.label(), "runtime", "slowdown"],
    );
    for p in &result.points {
        t.push_row([
            fmt_f(p.desired, 1),
            fmt_time(p.runtime),
            if p.completed {
                fmt_f(p.slowdown, 2)
            } else {
                "N/A".into()
            },
        ]);
    }
    println!("{t}");
    if let Some(fit) = result.linearity() {
        println!(
            "linear fit: slowdown ≈ {:.4}·x + {:.2}   (R² = {:.4})",
            fit.slope, fit.intercept, fit.r2
        );
    }
    Ok(())
}

fn cmd_suite(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let procs = parse_or(flags, "procs", 32usize)?;
    let mut t = Table::new(
        format!("benchmark suite on {procs} processors"),
        &["program", "runtime", "msg/proc", "interval us", "% bulk", "% reads"],
    );
    for app in suite_scaled(scale) {
        let out = app.run(&RunSpec::new(procs).with_event_limit(300_000_000));
        t.push_row([
            app.name().to_string(),
            fmt_time(out.runtime),
            fmt_f(out.stats.avg_msgs_per_proc(), 0),
            fmt_f(out.stats.msg_interval_us(), 1),
            fmt_f(out.stats.pct_bulk(), 1),
            fmt_f(out.stats.pct_reads(), 1),
        ]);
    }
    println!("{t}");
    Ok(())
}
