//! # nowlab — a LogGP cluster-communication laboratory
//!
//! A production-quality Rust reproduction of
//!
//! > Richard P. Martin, Amin M. Vahdat, David E. Culler, Thomas E.
//! > Anderson. *"Effects of Communication Latency, Overhead, and Bandwidth
//! > in a Cluster Architecture."* ISCA 1997.
//!
//! The paper's apparatus — a Myrinet cluster whose Active Message layer
//! can independently inflate the LogGP parameters `o`, `g`, `L`, and `G`
//! — is rebuilt as a deterministic discrete-event emulation, together with
//! the Split-C programming layer, the ten-application benchmark suite, the
//! calibration microbenchmarks, and the analytic sensitivity models.
//!
//! ## Layer map
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | discrete-event kernel: virtual time, async executor |
//! | [`am`] | LogGP NIC/network model + Active Messages + knobs |
//! | [`splitc`] | global address space: reads, pipelined writes, bulk, barriers, locks |
//! | [`core`] | calibration (§3.3), models (§5), sweep driver, reporting |
//! | [`apps`] | Radix, EM3D (read/write), Sample, Barnes, P-Ray, Murphi, Connect, NOW-sort, Radb |
//!
//! ## Quickstart
//!
//! Measure how much extra per-message overhead slows EM3D on 8
//! processors, exactly as Figure 5 of the paper does:
//!
//! ```
//! use nowlab::core::{sweep, Axis, RunSpec};
//! use nowlab::apps::em3d::{Em3dParams, Em3dWrite};
//!
//! let app = Em3dWrite::new(Em3dParams::small());
//! let result = sweep(&app, &RunSpec::new(8), Axis::Overhead, &[2.9, 13.0])
//!     .expect("the baseline run completes");
//! assert!((result.points[0].slowdown - 1.0).abs() < 1e-9);
//! assert!(result.points[1].slowdown > 1.5, "overhead hurts EM3D");
//! ```
//!
//! See `examples/quickstart.rs` for a guided tour, and the `nowlab-bench`
//! crate for the regenerators of every table and figure in the paper.
//!
//! ## Writing your own application
//!
//! Implement [`SweepableApp`] over a Split-C SPMD body and it plugs into
//! the sweep driver, models, and CLI like the built-in suite. A complete
//! nearest-neighbor ring exchange:
//!
//! ```
//! use nowlab::core::{RunOutcome, RunSpec, SweepableApp, sweep, Axis};
//! use nowlab::splitc::{run_spmd, GlobalPtr, SpmdConfig};
//!
//! struct RingExchange {
//!     steps: usize,
//! }
//!
//! impl SweepableApp for RingExchange {
//!     fn name(&self) -> &str {
//!         "ring"
//!     }
//!
//!     fn run(&self, spec: &RunSpec) -> RunOutcome {
//!         let steps = self.steps;
//!         let cfg = SpmdConfig::new(spec.procs).with_net(spec.net);
//!         let outcome = run_spmd(&cfg, move |ctx| async move {
//!             let r = ctx.alloc_region(steps);
//!             ctx.barrier().await;
//!             let right = (ctx.me() + 1) % ctx.procs();
//!             for s in 0..steps {
//!                 // Push a value to the right neighbor, then wait for
//!                 // the one arriving from the left.
//!                 ctx.write(GlobalPtr::new(right, r, s), (ctx.me() + s) as u64).await;
//!                 ctx.sync().await;
//!                 ctx.barrier().await;
//!             }
//!             ctx.load_local(r, steps - 1)
//!         });
//!         RunOutcome {
//!             runtime: outcome.elapsed,
//!             stats: outcome.stats,
//!             completed: outcome.completed,
//!             completers: outcome.outputs.iter().filter(|o| o.is_some()).count(),
//!             abort: outcome.abort,
//!             check: outcome.outputs.iter().map(|o| o.unwrap_or(0)).sum(),
//!             events: outcome.report.events_fired,
//!             trace: None,
//!             metrics: None,
//!         }
//!     }
//! }
//!
//! let app = RingExchange { steps: 8 };
//! let result = sweep(&app, &RunSpec::new(4), Axis::Overhead, &[2.9, 53.0])
//!     .expect("the baseline run completes");
//! assert!(result.points[1].slowdown > 2.0, "a chatty ring feels overhead");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The discrete-event simulation kernel (re-export of `nowlab-sim`).
pub mod sim {
    pub use nowlab_sim::*;
}

/// The LogGP network and Active Message layer (re-export of `nowlab-am`).
pub mod am {
    pub use nowlab_am::*;
}

/// Per-message LogGP cost tracing (re-export of `nowlab-trace`).
pub mod trace {
    pub use nowlab_trace::*;
}

/// Simulated-time utilization metrics (re-export of `nowlab-metrics`).
pub mod metrics {
    pub use nowlab_metrics::*;
}

/// Happens-before DAG analytics and LogGP re-pricing (re-export of
/// `nowlab-predict`).
pub mod predict {
    pub use nowlab_predict::*;
}

/// The Split-C-style PGAS layer (re-export of `nowlab-splitc`).
pub mod splitc {
    pub use nowlab_splitc::*;
}

/// The sensitivity apparatus (re-export of `nowlab-core`).
pub mod core {
    pub use nowlab_core::*;
}

/// The benchmark suite (re-export of `nowlab-apps`).
pub mod apps {
    pub use nowlab_apps::*;
}

pub use nowlab_am::{FaultPlan, Knobs, LoggpParams, NetConfig, Outage, Reliability};
pub use nowlab_core::{
    default_jobs, sweep, sweep_jobs, sweep_many, Axis, RunOutcome, RunSpec, SweepError,
    SweepableApp, TraceMode,
};
