//! Sensitivity sweep: reproduce the shape of the paper's Figures 5-7 on a
//! few applications at reduced scale, printing slowdown per knob setting.
//!
//! Run with: `cargo run --release --example sensitivity`

use nowlab::apps::em3d::{Em3dParams, Em3dRead, Em3dWrite};
use nowlab::apps::radix::{Radix, RadixParams};
use nowlab::core::report::{fmt_f, Table};
use nowlab::core::{default_jobs, sweep_many, Axis, RunSpec, SweepableApp};

fn main() {
    let apps: Vec<Box<dyn SweepableApp>> = vec![
        Box::new(Radix::new(RadixParams::small().scaled(4.0))),
        Box::new(Em3dWrite::new(Em3dParams::small().scaled(2.0))),
        Box::new(Em3dRead::new(Em3dParams::small().scaled(2.0))),
    ];
    let template = RunSpec::new(8);

    for axis in [Axis::Overhead, Axis::Gap, Axis::Latency] {
        let values = axis.paper_values();
        let mut table = Table::new(
            format!("slowdown vs {axis} (8 processors, reduced inputs)"),
            &std::iter::once("app".to_string())
                .chain(values.iter().map(|v| format!("{v}")))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );
        // Fan the (app, value) runs across all cores; results are
        // byte-identical to a sequential sweep.
        for result in sweep_many(&apps, &template, axis, &values, default_jobs()) {
            let result = result.expect("reduced-scale baselines complete");
            let mut row = vec![result.app.clone()];
            for p in &result.points {
                row.push(if p.completed {
                    fmt_f(p.slowdown, 2)
                } else {
                    "N/A".to_string()
                });
            }
            table.push_row(row);
        }
        println!("{table}");
        println!(
            "(read-based EM3D should dominate the latency sweep; every app\n\
             should feel overhead; only chatty apps should feel gap)\n"
        );
    }
}
