//! Machine comparison: run applications on the Table 1 machines — the
//! Berkeley NOW, the Intel Paragon, the Meiko CS-2 — and on a mid-90s
//! TCP/IP LAN, using each machine's measured LogGP parameters.
//!
//! Run with: `cargo run --release --example machines`

use nowlab::apps::radix::{Radix, RadixParams};
use nowlab::apps::sample::{Sample, SampleParams};
use nowlab::core::calib::calibrate;
use nowlab::core::report::{fmt_time, Table};
use nowlab::core::{RunSpec, SweepableApp};
use nowlab::{LoggpParams, NetConfig};

fn main() {
    let machines: Vec<(&str, LoggpParams)> = vec![
        ("Berkeley NOW", LoggpParams::berkeley_now()),
        ("Intel Paragon", LoggpParams::intel_paragon()),
        ("Meiko CS-2", LoggpParams::meiko_cs2()),
        ("TCP/IP LAN", LoggpParams::lan_tcp()),
    ];

    // Calibrate each machine first (Table 1).
    let mut cal = Table::new(
        "machine LogGP characteristics (calibrated in-simulator)",
        &["machine", "o (us)", "g (us)", "L (us)", "MB/s"],
    );
    for (name, m) in &machines {
        let cfg = NetConfig::berkeley_now().with_machine(*m);
        let c = calibrate(cfg);
        cal.push_row([
            name.to_string(),
            format!("{:.1}", c.o_mean_us()),
            format!("{:.1}", c.gap_us),
            format!("{:.1}", c.latency_us),
            format!("{:.0}", m.bulk_mb_per_s()),
        ]);
    }
    println!("{cal}");

    // Run two sorts on each.
    let apps: Vec<Box<dyn SweepableApp>> = vec![
        Box::new(Radix::new(RadixParams::small().scaled(4.0))),
        Box::new(Sample::new(SampleParams::small().scaled(4.0))),
    ];
    let mut t = Table::new(
        "application runtime by machine (8 processors, reduced inputs)",
        &["app", "NOW", "Paragon", "Meiko", "LAN", "LAN/NOW"],
    );
    for app in &apps {
        let mut row = vec![app.name().to_string()];
        let mut times = Vec::new();
        for (_, m) in &machines {
            let spec = RunSpec::new(8).with_net(NetConfig::berkeley_now().with_machine(*m));
            let out = app.run(&spec);
            assert!(out.completed, "{} failed", app.name());
            times.push(out.runtime);
            row.push(fmt_time(out.runtime));
        }
        row.push(format!(
            "{:.1}x",
            times[3].as_secs_f64() / times[0].as_secs_f64()
        ));
        t.push_row(row);
    }
    println!("{t}");
    println!(
        "The LAN column is the point of the paper: same processors, same\n\
         program — only the communication layer differs."
    );
}
