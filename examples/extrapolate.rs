//! Extrapolation: use the compound LogGP sensitivity model to predict what
//! communication improvements would buy — the paper's §7 conclusion that
//! "the investment may be better directed toward improving the
//! communication system" than toward faster processors.
//!
//! Run with: `cargo run --release --example extrapolate`

use nowlab::apps::em3d::{Em3dParams, Em3dWrite};
use nowlab::apps::radix::{Radix, RadixParams};
use nowlab::core::report::{fmt_f, Table};
use nowlab::core::SensitivityModel;
use nowlab::sim::SimDelta;
use nowlab::{Knobs, NetConfig, RunSpec, SweepableApp};

fn main() {
    let apps: Vec<Box<dyn SweepableApp>> = vec![
        Box::new(Radix::new(RadixParams::small().scaled(4.0))),
        Box::new(Em3dWrite::new(Em3dParams::small().scaled(2.0))),
    ];
    let spec = RunSpec::new(8);

    let mut t = Table::new(
        "what communication improvements would buy (model extrapolation)",
        &[
            "app",
            "baseline",
            "halve o (pred)",
            "zero o (pred)",
            "LAN o (pred)",
            "LAN o (measured)",
        ],
    );
    for app in &apps {
        let baseline = app.run(&spec);
        assert!(baseline.completed);
        let model = SensitivityModel::from_baseline(&baseline);

        // Backward: hypothetical designs more aggressive than the NOW.
        let half_o = model
            .extrapolate_overhead_reduction(SimDelta::from_micros(1.45))
            .expect("overhead share exceeds half");
        let zero_o = model
            .extrapolate_overhead_reduction(SimDelta::from_micros(2.9))
            .expect("overhead share exceeds all");

        // Forward: validate against an actual slowed-down run.
        let lan = Knobs::with_overhead(SimDelta::from_micros(100.0));
        let pred_lan = model.predict(&lan);
        let meas_lan = app.run(&spec.with_net(NetConfig::berkeley_now().with_knobs(lan)));
        assert!(meas_lan.completed);

        t.push_row([
            app.name().to_string(),
            format!("{:.2}ms", baseline.runtime.as_millis_f64()),
            format!("{:.2}ms", half_o.as_millis_f64()),
            format!("{:.2}ms", zero_o.as_millis_f64()),
            format!("{:.2}ms", pred_lan.as_millis_f64()),
            format!(
                "{:.2}ms ({}x)",
                meas_lan.runtime.as_millis_f64(),
                fmt_f(
                    meas_lan.runtime.as_secs_f64() / baseline.runtime.as_secs_f64(),
                    1
                )
            ),
        ]);
    }
    println!("{t}");
    println!(
        "Reading: even for the NOW's aggressive 2.9us overhead, the model\n\
         attributes a measurable share of runtime to o — and the forward\n\
         prediction against a measured LAN-overhead run shows how much (and\n\
         for which programs) the linear model can be trusted."
    );
}
