//! Quickstart: build a tunable LogGP cluster, run a Split-C program on it,
//! then slow the network down and watch the program feel it.
//!
//! Run with: `cargo run --release --example quickstart`

use nowlab::core::calib::{calibrate, round_trip_us};
use nowlab::sim::SimDelta;
use nowlab::splitc::{run_spmd, GlobalPtr, SpmdConfig};
use nowlab::{Knobs, NetConfig};

fn main() {
    // ------------------------------------------------------------------
    // 1. The baseline machine: the Berkeley NOW of Table 1.
    // ------------------------------------------------------------------
    let now = NetConfig::berkeley_now();
    println!("Berkeley NOW baseline: {now}");
    let cal = calibrate(now);
    println!(
        "calibrated: o={:.1}us (send {:.1} / recv {:.1})  g={:.1}us  L={:.1}us  RTT={:.1}us\n",
        cal.o_mean_us(),
        cal.o_send_us,
        cal.o_recv_us,
        cal.gap_us,
        cal.latency_us,
        round_trip_us(now)
    );

    // ------------------------------------------------------------------
    // 2. A Split-C program: scatter results with *pipelined* writes (the
    //    paper's write-based application class), then synchronize.
    // ------------------------------------------------------------------
    let run_scatter = |net: NetConfig| {
        let outcome = run_spmd(&SpmdConfig::new(8).with_net(net), |ctx| async move {
            let table = ctx.alloc_region(8 * 200);
            ctx.barrier().await;
            // Each processor produces 200 results and writes each to a
            // hashed home processor without waiting for acknowledgements.
            for i in 0..200u64 {
                ctx.compute(SimDelta::from_micros(2.0)).await;
                let owner = ((i * 31 + ctx.me() as u64 * 7) % ctx.procs() as u64) as usize;
                let slot = ctx.me() * 200 + (i as usize % 200);
                ctx.write(GlobalPtr::new(owner, table, slot), i).await;
            }
            ctx.sync().await; // Split-C sync(): all stores acknowledged
            ctx.barrier().await;
            ctx.load_local(table, ctx.me())
        });
        assert!(outcome.completed);
        (outcome.elapsed, outcome.stats.total_sends())
    };

    let (t_base, msgs) = run_scatter(now);
    println!("scatter on the NOW:         {t_base}  ({msgs} messages)");

    // ------------------------------------------------------------------
    // 3. Dial the knobs: +100us overhead makes it a mid-90s LAN stack.
    // ------------------------------------------------------------------
    let lan = now.with_knobs(Knobs::with_overhead(SimDelta::from_micros(100.0)));
    let (t_lan, _) = run_scatter(lan);
    println!("scatter with LAN overhead:  {t_lan}");
    println!(
        "slowdown: {:.1}x  <- this gap is what the paper quantifies",
        t_lan.as_secs_f64() / t_base.as_secs_f64()
    );

    // Latency, by contrast, barely matters: pipelined writes do not wait
    // for the network (paper §5.3).
    let high_lat = now.with_knobs(Knobs::with_latency(SimDelta::from_micros(100.0)));
    let (t_lat, _) = run_scatter(high_lat);
    println!(
        "with +100us latency instead: {t_lat}  ({:.2}x)",
        t_lat.as_secs_f64() / t_base.as_secs_f64()
    );
}
