//! Communication-balance matrices: the ASCII analog of the paper's
//! Figure 4 greyscale plots. Each character cell (i, j) shades the number
//! of messages processor i sent to processor j.
//!
//! Run with: `cargo run --release --example traffic_matrix`

use nowlab::am::render_balance_matrix;
use nowlab::apps::nowsort::{NowSort, NowSortParams};
use nowlab::apps::radix::{Radix, RadixParams};
use nowlab::apps::sample::{Sample, SampleParams};
use nowlab::core::{RunSpec, SweepableApp};

fn main() {
    let apps: Vec<Box<dyn SweepableApp>> = vec![
        Box::new(Radix::new(RadixParams::small().scaled(2.0))),
        Box::new(Sample::new(SampleParams::small().scaled(2.0))),
        Box::new(NowSort::new(NowSortParams::small())),
    ];
    for app in apps {
        let out = app.run(&RunSpec::new(16));
        assert!(out.completed);
        println!(
            "--- {} (16 processors; max cell = {} messages, balance = {:.2}) ---",
            app.name(),
            out.stats.matrix_max(),
            out.stats.balance()
        );
        println!("{}", render_balance_matrix(&out.stats));
        match app.name() {
            "Radix" => println!("note the off-diagonal histogram chain over the all-to-all wash\n"),
            "Sample" => println!("note the vertical bars: receivers are unevenly loaded\n"),
            _ => println!("note the uniform black square: perfectly balanced streaming\n"),
        }
    }
}
